"""The individual speclint checks.

Each check is a generator taking the object under analysis plus a
:class:`LintContext` and yielding :class:`~repro.analysis.diagnostics.
Diagnostic` findings.  Checks are pure — no I/O, no trace data — they
look only at parsed ASTs, the CAN database, and the state machines, so
they run in microseconds, before a single simulation step.

See :mod:`repro.analysis.catalog` for the code catalog; the orchestration
lives in :mod:`repro.analysis.analyzer`.
"""

from __future__ import annotations

import difflib
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.analysis.catalog import make_diagnostic
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.intervals import (
    ALWAYS,
    MAYBE,
    NEVER,
    Interval,
    compare,
    expr_interval,
    negate_status,
)
from repro.analysis.walker import iter_nodes, walk
from repro.core.ast import (
    Always,
    And,
    Binary,
    BoolConst,
    Comparison,
    Constant,
    Eventually,
    Expr,
    Formula,
    Fresh,
    Historically,
    Implies,
    InState,
    Next,
    Node,
    Not,
    Once,
    Or,
    SignalPredicate,
    SignalRef,
    TraceFunc,
    Unary,
)
from repro.core.statemachine import StateMachine

#: AST node types carrying a [lo, hi] temporal bound.
TEMPORAL_BOUND_NODES = (Always, Eventually, Once, Historically)

#: Trace functions that look at history (need settle/warm-up).
_HISTORY_FUNCS = ("prev", "delta", "delta_naive", "rate")


@dataclass
class LintContext:
    """Everything the checks may consult.

    Attributes:
        database: CAN database for signal resolution, physical ranges and
            broadcast periods; ``None`` disables signal-aware checks.
        machines: state machines in scope, by name.
        period: the monitor sampling period in seconds.
        env: per-signal physical ranges derived from the database.
    """

    database: Optional[object] = None
    machines: Dict[str, StateMachine] = field(default_factory=dict)
    period: float = 0.02
    env: Mapping[str, Interval] = field(default_factory=dict)

    def signal_kind(self, name: str) -> Optional[str]:
        """``"float"`` / ``"bool"`` / ``"enum"`` or None when unknown."""
        if self.database is None or name not in self.database:
            return None
        return self.database.signal(name).kind.value

    def signal_period(self, name: str) -> Optional[float]:
        """Broadcast period of ``name``'s message, when known."""
        if self.database is None or name not in self.database:
            return None
        return self.database.message_for_signal(name).period


def rule_parts(rule) -> Iterator[Tuple[str, Node]]:
    """``(part name, AST)`` pairs for everything a rule evaluates."""
    yield "formula", rule.formula
    if rule.gate is not None:
        yield "gate", rule.gate
    if rule.warmup is not None:
        yield "warmup trigger", rule.warmup.trigger
    for intent_filter in rule.filters:
        expression = getattr(intent_filter, "expression", None)
        if isinstance(expression, Expr):
            yield "filter expression", expression


def formula_status(formula: Formula, env: Mapping[str, Interval]) -> str:
    """Three-valued static evaluation: ALWAYS / NEVER / MAYBE.

    Sound for in-range, non-NaN data; temporal operators propagate their
    operand's status (correct up to trace truncation, which yields
    UNKNOWN rather than flipping a verdict).
    """
    if isinstance(formula, BoolConst):
        return ALWAYS if formula.value else NEVER
    if isinstance(formula, SignalPredicate):
        interval = env.get(formula.name)
        if interval is None:
            return MAYBE
        if not interval.contains(0.0):
            return ALWAYS
        if interval.is_point:  # the point must be zero
            return NEVER
        return MAYBE
    if isinstance(formula, Comparison):
        return compare(
            formula.op,
            expr_interval(formula.left, env),
            expr_interval(formula.right, env),
        )
    if isinstance(formula, Not):
        return negate_status(formula_status(formula.operand, env))
    if isinstance(formula, And):
        left = formula_status(formula.left, env)
        right = formula_status(formula.right, env)
        if NEVER in (left, right):
            return NEVER
        if left == right == ALWAYS:
            return ALWAYS
        return MAYBE
    if isinstance(formula, Or):
        left = formula_status(formula.left, env)
        right = formula_status(formula.right, env)
        if ALWAYS in (left, right):
            return ALWAYS
        if left == right == NEVER:
            return NEVER
        return MAYBE
    if isinstance(formula, Implies):
        left = formula_status(formula.left, env)
        right = formula_status(formula.right, env)
        if left == NEVER or right == ALWAYS:
            return ALWAYS
        if left == ALWAYS and right == NEVER:
            return NEVER
        return MAYBE
    if isinstance(formula, (Always, Eventually, Once, Historically, Next)):
        return formula_status(formula.operand, env)
    # Fresh, InState: genuinely dynamic.
    return MAYBE


# ----------------------------------------------------------------------
# SL1xx — name resolution and typing
# ----------------------------------------------------------------------


def _suggest_signal(name: str, ctx: LintContext) -> str:
    matches = difflib.get_close_matches(
        name, ctx.database.signal_names(), n=1
    )
    return "did you mean %r?" % matches[0] if matches else ""


def check_signal_references(rule, subject: str, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL101: every referenced signal must exist in the CAN database."""
    if ctx.database is None:
        return
    reported = set()
    for part, node in rule_parts(rule):
        for name in _referenced_signals(node):
            if name in ctx.database or (part, name) in reported:
                continue
            reported.add((part, name))
            yield make_diagnostic(
                "SL101",
                subject,
                "%s references undefined signal %r" % (part, name),
                suggestion=_suggest_signal(name, ctx),
            )


def _referenced_signals(node: Node) -> Iterator[str]:
    for current in walk(node):
        if isinstance(current, (SignalRef, SignalPredicate, Fresh)):
            yield current.name
        elif isinstance(current, TraceFunc):
            yield current.signal


def check_instate_references(rule, subject: str, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL102/SL103: in_state() must name a known machine and state."""
    for part, node in rule_parts(rule):
        for ref in iter_nodes(node, InState):
            machine = ctx.machines.get(ref.machine)
            if machine is None:
                known = ", ".join(sorted(ctx.machines)) or "none defined"
                yield make_diagnostic(
                    "SL102",
                    subject,
                    "%s references unknown state machine %r (known: %s)"
                    % (part, ref.machine, known),
                )
            elif ref.state not in machine.states:
                matches = difflib.get_close_matches(
                    ref.state, machine.states, n=1
                )
                yield make_diagnostic(
                    "SL103",
                    subject,
                    "%s references unknown state %r of machine %r "
                    "(states: %s)"
                    % (part, ref.state, ref.machine, ", ".join(machine.states)),
                    suggestion="did you mean %r?" % matches[0] if matches else "",
                )


def check_type_confusion(rule, subject: str, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL110/SL111: numeric signals as bare atoms, booleans in arithmetic."""
    if ctx.database is None:
        return
    for part, node in rule_parts(rule):
        for current in walk(node):
            if isinstance(current, SignalPredicate):
                kind = ctx.signal_kind(current.name)
                if kind in ("float", "enum"):
                    yield make_diagnostic(
                        "SL110",
                        subject,
                        "%s uses %s signal %r as a bare boolean atom "
                        "(true when nonzero)" % (part, kind, current.name),
                        suggestion="write an explicit comparison, e.g. "
                        "'%s > 0'" % current.name,
                    )
            elif isinstance(current, (Binary, Unary)):
                for operand in current.children():
                    if (
                        isinstance(operand, SignalRef)
                        and ctx.signal_kind(operand.name) == "bool"
                    ):
                        yield make_diagnostic(
                            "SL111",
                            subject,
                            "%s uses boolean signal %r in arithmetic (%s)"
                            % (part, operand.name, current),
                        )
            elif isinstance(current, Comparison):
                yield from _check_bool_comparison(current, part, subject, ctx)


def _bool_operand_name(expr: Expr, ctx: LintContext) -> Optional[str]:
    if isinstance(expr, SignalRef):
        name = expr.name
    elif isinstance(expr, TraceFunc) and expr.kind == "prev":
        name = expr.signal
    else:
        return None
    return name if ctx.signal_kind(name) == "bool" else None


def _check_bool_comparison(
    node: Comparison, part: str, subject: str, ctx: LintContext
) -> Iterator[Diagnostic]:
    for side, other in ((node.left, node.right), (node.right, node.left)):
        name = _bool_operand_name(side, ctx)
        if name is None:
            continue
        if node.op in ("<", "<=", ">", ">="):
            yield make_diagnostic(
                "SL111",
                subject,
                "%s orders boolean signal %r with %r (%s)"
                % (part, name, node.op, node),
                suggestion="compare with == or != against 0/1, or use "
                "the signal as a boolean atom",
            )
            return  # one report per comparison
        if isinstance(other, Constant) and other.value not in (0.0, 1.0):
            yield make_diagnostic(
                "SL111",
                subject,
                "%s compares boolean signal %r against %g (%s)"
                % (part, name, other.value, node),
                suggestion="boolean signals only take the values 0 and 1",
            )
            return


# ----------------------------------------------------------------------
# SL2xx — temporal bounds
# ----------------------------------------------------------------------


def _bound_is_malformed(node) -> bool:
    return (
        not math.isfinite(node.lo)
        or not math.isfinite(node.hi)
        or node.lo < 0
        or node.hi < node.lo
    )


def _temporal_name(node) -> str:
    return type(node).__name__.lower()


def check_temporal_bounds(rule, subject: str, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL201/SL202: inverted, negative, non-finite or zero-width bounds."""
    for part, node in rule_parts(rule):
        for temporal in iter_nodes(node, *TEMPORAL_BOUND_NODES):
            if _bound_is_malformed(temporal):
                yield make_diagnostic(
                    "SL201",
                    subject,
                    "%s has malformed temporal bound %s[%g, %g]"
                    % (part, _temporal_name(temporal), temporal.lo, temporal.hi),
                    suggestion="bounds must satisfy 0 <= lo <= hi with "
                    "finite values",
                )
            elif temporal.lo == temporal.hi:
                detail = (
                    "the operator is a no-op"
                    if temporal.lo == 0
                    else "the window is a single row"
                )
                yield make_diagnostic(
                    "SL202",
                    subject,
                    "%s has zero-width temporal bound %s[%g, %g] — %s"
                    % (
                        part,
                        _temporal_name(temporal),
                        temporal.lo,
                        temporal.hi,
                        detail,
                    ),
                )


# ----------------------------------------------------------------------
# SL3xx — interval analysis / static vacuity
# ----------------------------------------------------------------------


def check_static_comparisons(rule, subject: str, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL301/SL302: comparisons decided by the physical signal ranges."""
    if not ctx.env:
        return
    for part, node in rule_parts(rule):
        if part == "filter expression":
            continue  # filters carry expressions, not comparisons
        for comparison in iter_nodes(node, Comparison):
            status = compare(
                comparison.op,
                expr_interval(comparison.left, ctx.env),
                expr_interval(comparison.right, ctx.env),
            )
            if status == MAYBE:
                continue
            code = "SL301" if status == ALWAYS else "SL302"
            yield make_diagnostic(
                code,
                subject,
                "%s comparison '%s' is always %s for in-range values"
                % (part, comparison, "true" if status == ALWAYS else "false"),
                suggestion="check the constant against the signal's "
                "physical range in the CAN database",
            )


def check_gate_vacuity(rule, subject: str, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL303/SL305: gates that can never (or always) hold."""
    if rule.gate is None or not ctx.env:
        return
    status = formula_status(rule.gate, ctx.env)
    if status == NEVER:
        yield make_diagnostic(
            "SL303",
            subject,
            "gate '%s' can never hold for in-range values — the rule is "
            "statically vacuous and will pass every campaign silently"
            % (rule.gate,),
            suggestion="fix the gate or delete the rule",
        )
    elif status == ALWAYS:
        yield make_diagnostic(
            "SL305",
            subject,
            "gate '%s' always holds for in-range values — it gates "
            "nothing" % (rule.gate,),
            suggestion="drop the gate",
        )


def check_vacuous_implications(rule, subject: str, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL304: implications whose antecedent can never hold."""
    if not ctx.env:
        return
    for part, node in rule_parts(rule):
        if not isinstance(node, Formula):
            continue
        for implication in iter_nodes(node, Implies):
            if formula_status(implication.left, ctx.env) == NEVER:
                yield make_diagnostic(
                    "SL304",
                    subject,
                    "%s antecedent '%s' can never hold for in-range "
                    "values — the implication is vacuously true"
                    % (part, implication.left),
                )


# ----------------------------------------------------------------------
# SL4xx — multi-rate sampling hazards (§V-C1)
# ----------------------------------------------------------------------


def check_multirate_windows(rule, subject: str, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL401: temporal window narrower than a referenced signal's period."""
    if ctx.database is None:
        return
    for part, node in rule_parts(rule):
        if not isinstance(node, Formula):
            continue
        for temporal in iter_nodes(node, *TEMPORAL_BOUND_NODES):
            if _bound_is_malformed(temporal):
                continue
            width = temporal.hi - temporal.lo
            if width <= 0:
                continue
            for name in dict.fromkeys(temporal.operand.signals()):
                period = ctx.signal_period(name)
                if period is not None and width < period:
                    yield make_diagnostic(
                        "SL401",
                        subject,
                        "%s window %s[%g, %g] spans %.0f ms but %r "
                        "broadcasts every %.0f ms — the window can close "
                        "before a fresh sample arrives (multi-rate "
                        "sampling, paper §V-C1)"
                        % (
                            part,
                            _temporal_name(temporal),
                            temporal.lo,
                            temporal.hi,
                            width * 1000.0,
                            name,
                            period * 1000.0,
                        ),
                        suggestion="widen the bound to at least %g s"
                        % period,
                    )


def check_slow_signal_functions(rule, subject: str, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL402/SL403: differencing signals broadcast slower than the monitor."""
    if ctx.database is None:
        return
    guarded = {
        node.name
        for part, tree in rule_parts(rule)
        for node in iter_nodes(tree, Fresh)
    }
    reported = set()
    for part, node in rule_parts(rule):
        for func in iter_nodes(node, TraceFunc):
            period = ctx.signal_period(func.signal)
            if period is None or period <= ctx.period:
                continue
            if func.kind == "delta_naive":
                key = ("SL402", part, func.signal)
                if key in reported:
                    continue
                reported.add(key)
                yield make_diagnostic(
                    "SL402",
                    subject,
                    "%s applies delta_naive() to %r, which broadcasts "
                    "every %.0f ms while the monitor samples every "
                    "%.0f ms — held rows difference to zero and updates "
                    "collapse several cycles into one (paper §V-C1)"
                    % (
                        part,
                        func.signal,
                        period * 1000.0,
                        ctx.period * 1000.0,
                    ),
                    suggestion="use the freshness-aware delta() instead",
                )
            elif (
                func.kind == "delta"
                and part in ("formula", "gate")
                and func.signal not in guarded
            ):
                key = ("SL403", func.signal)
                if key in reported:
                    continue
                reported.add(key)
                yield make_diagnostic(
                    "SL403",
                    subject,
                    "delta() on slow signal %r (broadcast every %.0f ms) "
                    "is held between updates; without a fresh(%s) guard "
                    "one sample can be checked on several rows"
                    % (func.signal, period * 1000.0, func.signal),
                    suggestion="gate the check with fresh(%s) if one "
                    "verdict per sample is intended" % func.signal,
                )


# ----------------------------------------------------------------------
# SL5xx — warm-up hazards (§V-C2)
# ----------------------------------------------------------------------


def check_warmup_hazards(rule, subject: str, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL501: history functions with neither settle nor warm-up."""
    if rule.initial_settle > 0 or rule.warmup is not None:
        return
    for part, node in rule_parts(rule):
        if part not in ("formula", "gate"):
            continue
        for func in iter_nodes(node, TraceFunc):
            if func.kind in _HISTORY_FUNCS:
                yield make_diagnostic(
                    "SL501",
                    subject,
                    "%s uses %s(%s) but the rule declares neither "
                    "'settle' nor 'warmup' — the check runs on power-on "
                    "transients and discrete activation jumps (paper "
                    "§V-C2)" % (part, func.kind, func.signal),
                    suggestion="add 'settle = 500ms' or a 'warmup = "
                    "trigger : duration' line",
                )
                return  # one report per rule is enough


# ----------------------------------------------------------------------
# SL6xx — state-machine structure
# ----------------------------------------------------------------------


def check_machine(machine: StateMachine, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL601/SL602/SL603 plus SL101 over transition guards."""
    subject = "machine %s" % machine.name

    # SL101: guards resolve against the database.
    if ctx.database is not None:
        reported = set()
        for transition in machine.transitions:
            for name in _referenced_signals(transition.guard):
                if name in ctx.database or name in reported:
                    continue
                reported.add(name)
                yield make_diagnostic(
                    "SL101",
                    subject,
                    "transition guard references undefined signal %r"
                    % name,
                    suggestion=_suggest_signal(name, ctx),
                )

    # SL601: reachability from the initial state.
    reachable = {machine.initial}
    frontier = [machine.initial]
    by_source: Dict[str, List] = {}
    for transition in machine.transitions:
        by_source.setdefault(transition.source, []).append(transition)
    while frontier:
        state = frontier.pop()
        for transition in by_source.get(state, ()):
            if transition.target not in reachable:
                reachable.add(transition.target)
                frontier.append(transition.target)
    for state in machine.states:
        if state not in reachable:
            yield make_diagnostic(
                "SL601",
                subject,
                "state %r is unreachable from initial state %r"
                % (state, machine.initial),
                suggestion="add a transition into it or delete it",
            )

    # SL602/SL603: guard overlap and statically constant guards.
    for source, transitions in by_source.items():
        seen_guards: Dict[str, str] = {}
        for index, transition in enumerate(transitions):
            guard_text = str(transition.guard)
            if guard_text in seen_guards:
                yield make_diagnostic(
                    "SL602",
                    subject,
                    "transitions '%s -> %s' and '%s -> %s' share the "
                    "guard '%s'; transitions fire in declaration order, "
                    "so the second can never fire"
                    % (
                        source,
                        seen_guards[guard_text],
                        source,
                        transition.target,
                        guard_text,
                    ),
                )
            else:
                seen_guards[guard_text] = transition.target
            if not ctx.env:
                continue
            status = formula_status(transition.guard, ctx.env)
            if status == ALWAYS and index < len(transitions) - 1:
                yield make_diagnostic(
                    "SL603",
                    subject,
                    "guard '%s' of transition '%s -> %s' is statically "
                    "always true and shadows %d later transition(s) out "
                    "of %r"
                    % (
                        transition.guard,
                        source,
                        transition.target,
                        len(transitions) - 1 - index,
                        source,
                    ),
                )
            elif status == NEVER:
                yield make_diagnostic(
                    "SL603",
                    subject,
                    "guard '%s' of transition '%s -> %s' can never hold "
                    "— the transition is dead"
                    % (transition.guard, source, transition.target),
                )


# ----------------------------------------------------------------------
# SL7xx — spec-set level
# ----------------------------------------------------------------------


def check_spec_set(rules, machines, ctx: LintContext) -> Iterator[Diagnostic]:
    """SL701/SL702: duplicate ids and duplicate rule bodies."""
    seen_ids: Dict[str, int] = {}
    for rule in rules:
        seen_ids[rule.rule_id] = seen_ids.get(rule.rule_id, 0) + 1
    for rule_id, count in seen_ids.items():
        if count > 1:
            yield make_diagnostic(
                "SL701",
                "rule %s" % rule_id,
                "rule id %r is defined %d times in this spec set"
                % (rule_id, count),
            )
    seen_names: Dict[str, int] = {}
    for machine in machines:
        seen_names[machine.name] = seen_names.get(machine.name, 0) + 1
    for name, count in seen_names.items():
        if count > 1:
            yield make_diagnostic(
                "SL701",
                "machine %s" % name,
                "machine name %r is defined %d times in this spec set"
                % (name, count),
            )

    by_body: Dict[str, str] = {}
    for rule in rules:
        body = str(rule.effective_formula())
        if body in by_body and by_body[body] != rule.rule_id:
            yield make_diagnostic(
                "SL702",
                "rule %s" % rule.rule_id,
                "effective formula duplicates rule %r (gate folded in): "
                "'%s'" % (by_body[body], body),
                suggestion="merge the rules or differentiate their "
                "gates/formulas",
            )
        else:
            by_body.setdefault(body, rule.rule_id)


#: The per-rule checks, in reporting order.
RULE_CHECKS = (
    check_signal_references,
    check_instate_references,
    check_type_confusion,
    check_temporal_bounds,
    check_static_comparisons,
    check_gate_vacuity,
    check_vacuous_implications,
    check_multirate_windows,
    check_slow_signal_functions,
    check_warmup_hazards,
)
