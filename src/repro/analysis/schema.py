"""The lint and audit report JSON formats — documentation and validation.

``repro lint --format json`` emits one report object::

    {
      "schema": "repro.lint/v1",
      "targets": [
        {"name": "<paper rules | file path>",
         "diagnostics": [{"code": "SL101", "severity": "error",
                          "subject": "rule rule2", "message": "...",
                          "suggestion": "", "file": null,
                          "line": null, "column": null}, ...],
         "counts": {"error": 0, "warning": 1, "info": 2}},
        ...
      ],
      "counts": {"error": 0, "warning": 1, "info": 2}
    }

``repro audit --format json`` emits the companion ``repro.audit/v1``
object: the same target/counts envelope, but each target carries its
diagnostics split into the three analysis-family ``sections``
(``rules``/``coverage``/``plan``) plus an integer ``summary`` block::

    {
      "schema": "repro.audit/v1",
      "targets": [
        {"name": "paper rules (strict)",
         "sections": {"rules": [...], "coverage": [...], "plan": [...]},
         "summary": {"rules": 7, "signals": 17, "monitored_signals": 13,
                     "tests": 32, "dead_tests": 0, "prunable_cells": 0,
                     "machines": 0},
         "counts": {"error": 0, "warning": 6, "info": 9}},
        ...
      ],
      "counts": {"error": 0, "warning": 6, "info": 9}
    }

Validation is hand-rolled like :mod:`repro.obs.schema` (zero-dependency
beyond numpy): :func:`validate_report` / :func:`validate_audit_report`
return a list of problems, and the ``require_*`` variants raise — the CI
``lint-specs`` and ``audit`` jobs call the latter over the bundled and
example spec files.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    count_by_severity,
)

#: Identifier of the report format this module reads and writes.
SCHEMA_VERSION = "repro.lint/v1"

#: Identifier of the cross-artifact audit report format.
AUDIT_SCHEMA_VERSION = "repro.audit/v1"

#: Identifier of the static margin-prover report format.
MARGINS_SCHEMA_VERSION = "repro.margins/v1"

#: Identifier of the symbolic-automata report format.
AUTOMATA_SCHEMA_VERSION = "repro.automata/v1"

#: Section keys of an audit target, in order (one per analysis family).
AUDIT_SECTIONS = ("rules", "coverage", "plan")

_SEVERITIES = tuple(severity.value for severity in Severity)


def build_report(
    targets: Sequence[Tuple[str, Sequence[Diagnostic]]]
) -> Dict[str, object]:
    """Assemble the JSON report for ``(target name, diagnostics)`` pairs."""
    target_dumps = []
    totals = {severity: 0 for severity in _SEVERITIES}
    for name, diagnostics in targets:
        counts = count_by_severity(diagnostics)
        for severity, count in counts.items():
            totals[severity] += count
        target_dumps.append(
            {
                "name": name,
                "diagnostics": [d.to_dict() for d in diagnostics],
                "counts": counts,
            }
        )
    return {
        "schema": SCHEMA_VERSION,
        "targets": target_dumps,
        "counts": totals,
    }


def _validate_counts(owner: str, counts: object) -> List[str]:
    if not isinstance(counts, dict):
        return ["%s needs a 'counts' object" % owner]
    problems = []
    for severity in _SEVERITIES:
        value = counts.get(severity)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(
                "%s count %r must be a non-negative integer" % (owner, severity)
            )
    return problems


def _validate_diagnostic(
    owner: str, dump: object, prefixes: Tuple[str, ...] = ("SL",)
) -> List[str]:
    if not isinstance(dump, dict):
        return ["%s diagnostics must be objects" % owner]
    problems = []
    code = dump.get("code")
    if not (isinstance(code, str) and code.startswith(prefixes)):
        problems.append(
            "%s diagnostic code %r is not a %s code"
            % (owner, code, "/".join(prefixes))
        )
    if dump.get("severity") not in _SEVERITIES:
        problems.append(
            "%s diagnostic severity %r invalid" % (owner, dump.get("severity"))
        )
    for key in ("subject", "message", "suggestion"):
        if not isinstance(dump.get(key), str):
            problems.append("%s diagnostic needs a string %r" % (owner, key))
    for key in ("file",):
        if dump.get(key) is not None and not isinstance(dump.get(key), str):
            problems.append("%s diagnostic %r must be a string or null" % (owner, key))
    for key in ("line", "column"):
        value = dump.get(key)
        if value is not None and (not isinstance(value, int) or isinstance(value, bool)):
            problems.append(
                "%s diagnostic %r must be an integer or null" % (owner, key)
            )
    return problems


def validate_report(report: object) -> List[str]:
    """All the ways ``report`` fails to be a valid lint report."""
    if not isinstance(report, dict):
        return ["report must be a JSON object, got %s" % type(report).__name__]
    problems: List[str] = []
    if report.get("schema") != SCHEMA_VERSION:
        problems.append(
            "schema must be %r, got %r" % (SCHEMA_VERSION, report.get("schema"))
        )
    targets = report.get("targets")
    if not isinstance(targets, list):
        return problems + ["missing or non-array 'targets'"]
    problems.extend(_validate_counts("report", report.get("counts")))
    totals = {severity: 0 for severity in _SEVERITIES}
    for target in targets:
        if not isinstance(target, dict):
            problems.append("targets must be objects")
            continue
        name = target.get("name")
        if not isinstance(name, str):
            problems.append("target needs a string 'name'")
            name = "<unnamed>"
        owner = "target %r" % name
        diagnostics = target.get("diagnostics")
        if not isinstance(diagnostics, list):
            problems.append("%s needs a 'diagnostics' array" % owner)
            diagnostics = []
        seen = {severity: 0 for severity in _SEVERITIES}
        for dump in diagnostics:
            problems.extend(_validate_diagnostic(owner, dump))
            if isinstance(dump, dict) and dump.get("severity") in seen:
                seen[dump["severity"]] += 1
        problems.extend(_validate_counts(owner, target.get("counts")))
        if isinstance(target.get("counts"), dict):
            for severity in _SEVERITIES:
                declared = target["counts"].get(severity)
                if isinstance(declared, int) and declared != seen[severity]:
                    problems.append(
                        "%s declares %r %s findings but lists %d"
                        % (owner, declared, severity, seen[severity])
                    )
                totals[severity] += seen[severity]
    if isinstance(report.get("counts"), dict) and not problems:
        for severity in _SEVERITIES:
            if report["counts"].get(severity) != totals[severity]:
                problems.append(
                    "report declares %r %s findings but targets sum to %d"
                    % (report["counts"].get(severity), severity, totals[severity])
                )
    return problems


def require_valid_report(report: object) -> Dict[str, object]:
    """Validate and return ``report``; raise ``ValueError`` otherwise."""
    problems = validate_report(report)
    if problems:
        raise ValueError("invalid lint report: %s" % "; ".join(problems))
    return report  # type: ignore[return-value]


# ----------------------------------------------------------------------
# The audit report format (repro.audit/v1)
# ----------------------------------------------------------------------


def build_audit_report(reports: Sequence) -> Dict[str, object]:
    """Assemble the JSON report for :class:`~repro.analysis.audit.
    AuditReport` objects (anything exposing ``to_dict()`` works)."""
    target_dumps = []
    totals = {severity: 0 for severity in _SEVERITIES}
    for report in reports:
        dump = report.to_dict()
        for severity, count in dump["counts"].items():
            totals[severity] += count
        target_dumps.append(dump)
    return {
        "schema": AUDIT_SCHEMA_VERSION,
        "targets": target_dumps,
        "counts": totals,
    }


def validate_audit_report(report: object) -> List[str]:
    """All the ways ``report`` fails to be a valid audit report."""
    if not isinstance(report, dict):
        return ["report must be a JSON object, got %s" % type(report).__name__]
    problems: List[str] = []
    if report.get("schema") != AUDIT_SCHEMA_VERSION:
        problems.append(
            "schema must be %r, got %r"
            % (AUDIT_SCHEMA_VERSION, report.get("schema"))
        )
    targets = report.get("targets")
    if not isinstance(targets, list):
        return problems + ["missing or non-array 'targets'"]
    problems.extend(_validate_counts("report", report.get("counts")))
    totals = {severity: 0 for severity in _SEVERITIES}
    for target in targets:
        if not isinstance(target, dict):
            problems.append("targets must be objects")
            continue
        name = target.get("name")
        if not isinstance(name, str):
            problems.append("target needs a string 'name'")
            name = "<unnamed>"
        owner = "target %r" % name
        sections = target.get("sections")
        if not isinstance(sections, dict):
            problems.append("%s needs a 'sections' object" % owner)
            sections = {}
        for key in sections:
            if key not in AUDIT_SECTIONS:
                problems.append("%s has unknown section %r" % (owner, key))
        seen = {severity: 0 for severity in _SEVERITIES}
        for section in AUDIT_SECTIONS:
            diagnostics = sections.get(section, [])
            if not isinstance(diagnostics, list):
                problems.append(
                    "%s section %r must be an array" % (owner, section)
                )
                continue
            for dump in diagnostics:
                problems.extend(
                    _validate_diagnostic(owner, dump, prefixes=("AU",))
                )
                if isinstance(dump, dict) and dump.get("severity") in seen:
                    seen[dump["severity"]] += 1
        summary = target.get("summary")
        if not isinstance(summary, dict):
            problems.append("%s needs a 'summary' object" % owner)
        else:
            for key, value in summary.items():
                if (
                    not isinstance(value, int)
                    or isinstance(value, bool)
                    or value < 0
                ):
                    problems.append(
                        "%s summary %r must be a non-negative integer"
                        % (owner, key)
                    )
        problems.extend(_validate_counts(owner, target.get("counts")))
        if isinstance(target.get("counts"), dict):
            for severity in _SEVERITIES:
                declared = target["counts"].get(severity)
                if isinstance(declared, int) and declared != seen[severity]:
                    problems.append(
                        "%s declares %r %s findings but lists %d"
                        % (owner, declared, severity, seen[severity])
                    )
                totals[severity] += seen[severity]
    if isinstance(report.get("counts"), dict) and not problems:
        for severity in _SEVERITIES:
            if report["counts"].get(severity) != totals[severity]:
                problems.append(
                    "report declares %r %s findings but targets sum to %d"
                    % (report["counts"].get(severity), severity, totals[severity])
                )
    return problems


def require_valid_audit_report(report: object) -> Dict[str, object]:
    """Validate and return ``report``; raise ``ValueError`` otherwise."""
    problems = validate_audit_report(report)
    if problems:
        raise ValueError("invalid audit report: %s" % "; ".join(problems))
    return report  # type: ignore[return-value]


# ----------------------------------------------------------------------
# The margin-prover report format (repro.margins/v1)
# ----------------------------------------------------------------------
#
# ``repro margins --format json`` (and ``--seeds-out``) emit one report
# object: the single analysis target flattened into the envelope, with
# every bound serialized through ``repro.core.robustness.float_to_json``
# (infinities become the strings "inf" / "-inf"; NaN is illegal)::
#
#     {
#       "schema": "repro.margins/v1",
#       "name": "paper rules",
#       "period": 0.02, "threshold": 0.0,
#       "rules": [{"rule": "rule5", "provably_safe": false,
#                  "lower": -12.0, "upper": "inf"}, ...],
#       "cells": [{"test": "...", "kind": "ballista", "targets": [...],
#                  "rule": "rule5", "prunable": false, "doomed": false,
#                  "lower": "-inf", "upper": "inf"}, ...],
#       "seeds": [{"rank": 1, "test": "...", "rule": "...",
#                  "lower": "-inf", "upper": "inf"}, ...],
#       "summary": {"rules": 7, "provably_safe_rules": 0, "cells": 224,
#                   "prunable_cells": 0, "doomed_cells": 0, "seeds": 224}
#     }


def build_margins_report(report) -> Dict[str, object]:
    """Assemble the JSON report for one :class:`~repro.analysis.margins.
    MarginReport` (anything exposing ``to_dict()`` works)."""
    dump = dict(report.to_dict())
    dump["schema"] = MARGINS_SCHEMA_VERSION
    return dump


def _validate_bound(owner: str, dump: Dict[str, object]) -> List[str]:
    """Check one lower/upper pair (JSON floats or "inf"/"-inf")."""
    from repro.core.robustness import float_from_json

    problems = []
    values = {}
    for key in ("lower", "upper"):
        raw = dump.get(key)
        try:
            value = float_from_json(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            problems.append("%s %r is not a margin bound: %r" % (owner, key, raw))
            continue
        if value != value:
            problems.append("%s %r is NaN" % (owner, key))
            continue
        values[key] = value
    if len(values) == 2 and values["lower"] > values["upper"]:
        problems.append("%s bounds are inverted" % owner)
    return problems


def validate_margins_report(report: object) -> List[str]:
    """All the ways ``report`` fails to be a valid margins report."""
    if not isinstance(report, dict):
        return ["report must be a JSON object, got %s" % type(report).__name__]
    problems: List[str] = []
    if report.get("schema") != MARGINS_SCHEMA_VERSION:
        problems.append(
            "schema must be %r, got %r"
            % (MARGINS_SCHEMA_VERSION, report.get("schema"))
        )
    if not isinstance(report.get("name"), str):
        problems.append("report needs a string 'name'")
    for key in ("period", "threshold"):
        value = report.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append("report %r must be a number" % key)
        elif key == "period" and value <= 0:
            problems.append("period must be positive")
        elif key == "threshold" and value < 0:
            problems.append("threshold must be non-negative")
    for key in ("rules", "cells", "seeds"):
        if not isinstance(report.get(key), list):
            problems.append("report needs a %r array" % key)
    if problems:
        return problems
    for entry in report["rules"]:
        if not isinstance(entry, dict):
            problems.append("rule entries must be objects")
            continue
        owner = "rule %r" % entry.get("rule")
        if not isinstance(entry.get("rule"), str):
            problems.append("rule entries need a string 'rule'")
        if not isinstance(entry.get("provably_safe"), bool):
            problems.append("%s needs a boolean 'provably_safe'" % owner)
        problems.extend(_validate_bound(owner, entry))
    for entry in report["cells"]:
        if not isinstance(entry, dict):
            problems.append("cell entries must be objects")
            continue
        owner = "cell %r x %r" % (entry.get("test"), entry.get("rule"))
        for key in ("test", "kind", "rule"):
            if not isinstance(entry.get(key), str):
                problems.append("%s needs a string %r" % (owner, key))
        targets = entry.get("targets")
        if not (
            isinstance(targets, list)
            and all(isinstance(t, str) for t in targets)
        ):
            problems.append("%s needs a string array 'targets'" % owner)
        for key in ("prunable", "doomed"):
            if not isinstance(entry.get(key), bool):
                problems.append("%s needs a boolean %r" % (owner, key))
        problems.extend(_validate_bound(owner, entry))
    for expected, entry in enumerate(report["seeds"], start=1):
        if not isinstance(entry, dict):
            problems.append("seed entries must be objects")
            continue
        owner = "seed #%d" % expected
        if entry.get("rank") != expected:
            problems.append(
                "%s declares rank %r (seeds must be ranked 1..n in order)"
                % (owner, entry.get("rank"))
            )
        for key in ("test", "rule"):
            if not isinstance(entry.get(key), str):
                problems.append("%s needs a string %r" % (owner, key))
        problems.extend(_validate_bound(owner, entry))
    summary = report.get("summary")
    if not isinstance(summary, dict):
        problems.append("report needs a 'summary' object")
    else:
        for key, value in summary.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(
                    "summary %r must be a non-negative integer" % key
                )
        if not problems:
            declared = {
                "rules": len(report["rules"]),
                "cells": len(report["cells"]),
                "seeds": len(report["seeds"]),
            }
            for key, count in declared.items():
                if summary.get(key) != count:
                    problems.append(
                        "summary declares %r %s but the report lists %d"
                        % (summary.get(key), key, count)
                    )
    return problems


def require_valid_margins_report(report: object) -> Dict[str, object]:
    """Validate and return ``report``; raise ``ValueError`` otherwise."""
    problems = validate_margins_report(report)
    if problems:
        raise ValueError("invalid margins report: %s" % "; ".join(problems))
    return report  # type: ignore[return-value]


# ----------------------------------------------------------------------
# The symbolic-automata report format (repro.automata/v1)
# ----------------------------------------------------------------------
#
# ``repro automata --format json`` emits one report object — the single
# analysis target flattened into the envelope like ``repro.margins/v1``::
#
#     {
#       "schema": "repro.automata/v1",
#       "name": "paper rules (strict)",
#       "period": 0.02,
#       "rules": [{"rule": "rule2", "name": "...", "status": "ok",
#                  "reason": "", "class": "bounded", "safety": true,
#                  "co_safety": true, "horizon_rows": 1,
#                  "monitor_horizon_rows": 1, "states": 3, "letters": 4,
#                  "atoms": ["BrakeRequested", "RequestedDecel <= 0"],
#                  "satisfiable": "yes", "falsifiable": "yes",
#                  "observability": {"referenced": [...],
#                                    "required": [...],
#                                    "droppable": [...]}}, ...],
#       "summary": {"rules": 7, "bounded": 7, "safety": 0,
#                   "co-safety": 0, "neither": 0, "unsupported": 0}
#     }
#
# ``status`` is "ok" | "unsupported" | "budget"; every certificate field
# ("class" through "observability") is null for a non-"ok" entry.

_AUTOMATA_STATUSES = ("ok", "unsupported", "budget")
_AUTOMATA_CLASSES = ("bounded", "safety", "co-safety", "neither")
_TRI_STATE = ("yes", "no", "unknown")
_AUTOMATA_SUMMARY_KEYS = (
    "rules", "bounded", "safety", "co-safety", "neither", "unsupported",
)


def build_automata_report(report) -> Dict[str, object]:
    """Assemble the JSON report for one :class:`~repro.analysis.automata.
    AutomataReport` (anything exposing ``to_dict()`` works)."""
    dump = dict(report.to_dict())
    dump["schema"] = AUTOMATA_SCHEMA_VERSION
    return dump


def _validate_rule_automaton(entry: object) -> List[str]:
    if not isinstance(entry, dict):
        return ["rule entries must be objects"]
    problems = []
    owner = "rule %r" % entry.get("rule")
    for key in ("rule", "name", "reason"):
        if not isinstance(entry.get(key), str):
            problems.append("%s needs a string %r" % (owner, key))
    status = entry.get("status")
    if status not in _AUTOMATA_STATUSES:
        problems.append(
            "%s status %r is not one of %s"
            % (owner, status, "/".join(_AUTOMATA_STATUSES))
        )
    compiled = status == "ok"
    klass = entry.get("class")
    if compiled:
        if klass not in _AUTOMATA_CLASSES:
            problems.append(
                "%s class %r is not one of %s"
                % (owner, klass, "/".join(_AUTOMATA_CLASSES))
            )
        for key in ("safety", "co_safety"):
            if not isinstance(entry.get(key), bool):
                problems.append("%s needs a boolean %r" % (owner, key))
        for key in ("states", "letters"):
            value = entry.get(key)
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < 1
            ):
                problems.append(
                    "%s %r must be a positive integer" % (owner, key)
                )
    elif klass is not None:
        problems.append("%s is not compiled but declares a class" % owner)
    for key in ("horizon_rows", "monitor_horizon_rows"):
        value = entry.get(key)
        if value is not None and (
            not isinstance(value, int)
            or isinstance(value, bool)
            or value < 0
        ):
            problems.append(
                "%s %r must be a non-negative integer or null" % (owner, key)
            )
    for key in ("satisfiable", "falsifiable"):
        if entry.get(key) not in _TRI_STATE:
            problems.append(
                "%s %r must be one of %s"
                % (owner, key, "/".join(_TRI_STATE))
            )
    atoms = entry.get("atoms")
    if not (
        isinstance(atoms, list) and all(isinstance(a, str) for a in atoms)
    ):
        problems.append("%s needs a string array 'atoms'" % owner)
    observability = entry.get("observability")
    if compiled:
        if not isinstance(observability, dict):
            problems.append("%s needs an 'observability' object" % owner)
        else:
            sets = {}
            for key in ("referenced", "required", "droppable"):
                names = observability.get(key)
                if not (
                    isinstance(names, list)
                    and all(isinstance(n, str) for n in names)
                ):
                    problems.append(
                        "%s observability %r must be a string array"
                        % (owner, key)
                    )
                else:
                    sets[key] = set(names)
            if len(sets) == 3 and sets["required"] | sets["droppable"] != sets[
                "referenced"
            ]:
                problems.append(
                    "%s observability sets do not partition 'referenced'"
                    % owner
                )
    elif observability is not None:
        problems.append(
            "%s is not compiled but declares observability" % owner
        )
    return problems


def validate_automata_report(report: object) -> List[str]:
    """All the ways ``report`` fails to be a valid automata report."""
    if not isinstance(report, dict):
        return ["report must be a JSON object, got %s" % type(report).__name__]
    problems: List[str] = []
    if report.get("schema") != AUTOMATA_SCHEMA_VERSION:
        problems.append(
            "schema must be %r, got %r"
            % (AUTOMATA_SCHEMA_VERSION, report.get("schema"))
        )
    if not isinstance(report.get("name"), str):
        problems.append("report needs a string 'name'")
    period = report.get("period")
    if not isinstance(period, (int, float)) or isinstance(period, bool):
        problems.append("report 'period' must be a number")
    elif period <= 0:
        problems.append("period must be positive")
    rules = report.get("rules")
    if not isinstance(rules, list):
        return problems + ["report needs a 'rules' array"]
    counted = {key: 0 for key in _AUTOMATA_SUMMARY_KEYS}
    counted["rules"] = len(rules)
    for entry in rules:
        problems.extend(_validate_rule_automaton(entry))
        if not isinstance(entry, dict):
            continue
        if entry.get("status") != "ok":
            counted["unsupported"] += 1
        elif entry.get("class") in _AUTOMATA_CLASSES:
            counted[entry["class"]] += 1
    summary = report.get("summary")
    if not isinstance(summary, dict):
        problems.append("report needs a 'summary' object")
    else:
        for key, value in summary.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(
                    "summary %r must be a non-negative integer" % key
                )
        if not problems:
            for key in _AUTOMATA_SUMMARY_KEYS:
                if summary.get(key) != counted[key]:
                    problems.append(
                        "summary declares %r %s but the report lists %d"
                        % (summary.get(key), key, counted[key])
                    )
    return problems


def require_valid_automata_report(report: object) -> Dict[str, object]:
    """Validate and return ``report``; raise ``ValueError`` otherwise."""
    problems = validate_automata_report(report)
    if problems:
        raise ValueError("invalid automata report: %s" % "; ".join(problems))
    return report  # type: ignore[return-value]
