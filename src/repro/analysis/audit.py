"""Cross-artifact campaign audit — the engine behind ``repro audit``.

Where :mod:`repro.analysis.analyzer` (speclint) analyzes one spec set in
isolation, the auditor checks that the *artifacts of a whole campaign*
agree with each other: the CAN database, the rule set, the injection
plan, and the checker-profile registry.  Three analysis families, one
per report section:

* **rule-set verification** (``AU1xx``) — pairwise contradiction and
  subsumption between rules via a conservative implication prover seeded
  with DBC physical ranges, plus set-level vacuity and duplicate
  signal-coverage reports;
* **monitoring coverage** (``AU2xx``) — DBC signals, machine states and
  ACC operating modes referenced by no rule, computed over the
  :class:`~repro.analysis.depgraph.DependencyGraph`;
* **injection-plan checks** (``AU3xx``/``AU4xx``) — Ballista values a
  range-checking testbed degrades to no-ops, flip masks wider than the
  target field, targets absent from the DBC, statically dead
  (injection x rule) cells, unknown checker profiles, and monitor
  periods that undersample rule-referenced signals.

The symbolic automata pass (:mod:`repro.analysis.automata`) backs two
more layers: when the syntactic prover answers "unknown" on a pair or
vacuity question, the decision procedure retries it on the compiled
product automaton (same AU101/AU102/AU103 codes, message marked as a
decision-procedure proof), and every rule gets a monitorability
certificate cross-checked against the online monitor's conservative
horizon (``AU6xx``: no finite decision horizon, over-provisioned
buffering, or an uncertifiable rule).

The static margin prover (:mod:`repro.analysis.margins`) adds the
quantitative ``AU5xx`` findings on top: provably unfalsifiable rules
(positive static lower margin) and tight-margin hotspots in the rules
section, statically doomed (injection x rule) cells — negative static
upper margin under the cell's injection-widened ranges — in the plan
section, plus the ``provably_safe_rules`` / ``margin_prunable_cells`` /
``doomed_cells`` summary counters that feed ``table1 --prune margins``.

Like the rest of the package the auditor is pure static analysis: it
reads parsed ASTs, the database, and a :class:`CampaignPlan` — no trace
data, no simulation.  The implication prover is *conservative*: it only
answers "proved" or "unknown", so every AU101/AU102 finding is a real
entailment under the stated model.  As with
:mod:`repro.analysis.intervals`, the model is in-range, non-NaN data —
negation rewrites comparisons classically (``not (x < 5)`` becomes
``x >= 5``), which NaN rows would falsify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.analyzer import database_env
from repro.analysis.automata import (
    PROVED,
    compile_rule,
    prove_contradicts,
    prove_implies,
    prove_valid,
)
from repro.analysis.catalog import make_diagnostic
from repro.analysis.checks import formula_status
from repro.analysis.depgraph import DependencyGraph
from repro.analysis.diagnostics import (
    Diagnostic,
    count_by_severity,
    has_errors,
    sort_diagnostics,
)
from repro.analysis.intervals import ALWAYS, Interval, MAYBE, NEVER, intersect
from repro.analysis.predicates import dbc_environment
from repro.core.ast import (
    Always,
    And,
    BoolConst,
    Comparison,
    Constant,
    Eventually,
    Formula,
    Historically,
    Implies,
    Next,
    Not,
    Once,
    Or,
    SignalRef,
)
from repro.core.monitor import DEFAULT_PERIOD
from repro.core.statemachine import StateMachine

#: The ACC operating modes of the paper's §II system description; a spec
#: set with no machine state for a mode cannot express mode-specific
#: properties (modal blindness, §V-B).
ACC_MODES: Tuple[str, ...] = ("off", "standby", "engaged", "fault")

#: Report sections, in presentation order.
SECTIONS: Tuple[str, ...] = ("rules", "coverage", "plan")

#: Default (unconstrained) signal environment for the standalone prover
#: entry points — every signal unbounded.
_EMPTY_ENV: Mapping[str, Interval] = {}

_SECTION_TITLES = {
    "rules": "rule-set verification",
    "coverage": "monitoring coverage",
    "plan": "injection plan",
}


# ----------------------------------------------------------------------
# The campaign plan artifact
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignPlan:
    """The injection-plan artifact the auditor checks.

    Attributes:
        tests: the planned :class:`~repro.testing.campaign.InjectionTest`
            rows, in table order.
        profile: name of the injection type-checker profile the campaign
            will be constructed with.
        period: the monitor sampling period the captured traces will be
            checked at.
    """

    tests: Tuple["InjectionTest", ...]  # noqa: F821 - structural, see campaign
    profile: str = "hil"
    period: float = DEFAULT_PERIOD


def paper_plan() -> CampaignPlan:
    """The paper's full Table I plan on the default HIL profile."""
    from repro.testing.campaign import table1_tests

    return CampaignPlan(tests=tuple(table1_tests()))


# ----------------------------------------------------------------------
# Conservative implication prover
# ----------------------------------------------------------------------

_NEGATED_OP = {
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "==": "!=",
    "!=": "==",
}

#: Recursion fuel for the prover; formulas deeper than this stay "unknown".
_MAX_DEPTH = 32


def negate(formula: Formula) -> Formula:
    """The classical negation of ``formula``, pushed toward the atoms.

    Comparisons flip their operator — valid for in-range, non-NaN data
    only (NaN makes both ``x < 5`` and ``x >= 5`` false); the prover's
    verdicts inherit that caveat.  Temporal duals follow the usual
    rewriting (``not always`` = ``eventually not`` and so on).
    """
    if isinstance(formula, BoolConst):
        return BoolConst(not formula.value)
    if isinstance(formula, Not):
        return formula.operand
    if isinstance(formula, Comparison):
        return Comparison(_NEGATED_OP[formula.op], formula.left, formula.right)
    if isinstance(formula, And):
        return Or(negate(formula.left), negate(formula.right))
    if isinstance(formula, Or):
        return And(negate(formula.left), negate(formula.right))
    if isinstance(formula, Implies):
        return And(formula.left, negate(formula.right))
    if isinstance(formula, Always):
        return Eventually(formula.lo, formula.hi, negate(formula.operand))
    if isinstance(formula, Eventually):
        return Always(formula.lo, formula.hi, negate(formula.operand))
    if isinstance(formula, Once):
        return Historically(formula.lo, formula.hi, negate(formula.operand))
    if isinstance(formula, Historically):
        return Once(formula.lo, formula.hi, negate(formula.operand))
    if isinstance(formula, Next):
        return Next(negate(formula.operand))
    return Not(formula)


def _point_satisfies(value: float, op: str, bound: float) -> bool:
    if op == "<":
        return value < bound
    if op == "<=":
        return value <= bound
    if op == ">":
        return value > bound
    if op == ">=":
        return value >= bound
    if op == "==":
        return value == bound
    return value != bound


def _satisfied_subset(op1: str, c: float, op2: str, d: float) -> bool:
    """Whether ``{x | x op1 c}`` is a subset of ``{x | x op2 d}``.

    The satisfied sets are over the reals; inclusion over a superset
    domain implies inclusion over any DBC-restricted subdomain, so this
    is conservative without consulting the environment.
    """
    if op1 == "==":
        return _point_satisfies(c, op2, d)
    if op1 == "<":
        if op2 in ("<", "<="):
            return c <= d
        if op2 == "!=":
            return d >= c
        return False
    if op1 == "<=":
        if op2 == "<":
            return c < d
        if op2 == "<=":
            return c <= d
        if op2 == "!=":
            return d > c
        return False
    if op1 == ">":
        if op2 in (">", ">="):
            return c >= d
        if op2 == "!=":
            return d <= c
        return False
    if op1 == ">=":
        if op2 == ">":
            return c > d
        if op2 == ">=":
            return c >= d
        if op2 == "!=":
            return d < c
        return False
    # op1 == "!=": unbounded on both sides, only itself fits.
    return op2 == "!=" and c == d


def _comparison_implies(a: Comparison, b: Comparison) -> bool:
    """Entailment between comparisons over the same left-hand side."""
    if a.left != b.left:
        return False
    if not isinstance(a.right, Constant) or not isinstance(b.right, Constant):
        return False
    return _satisfied_subset(
        a.op, float(a.right.value), b.op, float(b.right.value)
    )


def _comparison_constraint(
    formula: Formula,
) -> Optional[Tuple[str, Interval]]:
    """The satisfying interval of a bare ``signal OP constant``
    comparison (either orientation), or ``None``.

    Intervals are closed, so strict bounds are *widened* by keeping the
    endpoint: the result over-approximates the satisfying set, which is
    the sound direction for both uses below (a superset that still
    forces ``b`` true, or a superset that is still empty).
    """
    if not isinstance(formula, Comparison):
        return None
    if isinstance(formula.left, SignalRef) and isinstance(
        formula.right, Constant
    ):
        name, op, bound = formula.left.name, formula.op, formula.right.value
    elif isinstance(formula.right, SignalRef) and isinstance(
        formula.left, Constant
    ):
        mirrored = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}
        if formula.op not in mirrored:
            return None
        name, op, bound = (
            formula.right.name,
            mirrored[formula.op],
            formula.left.value,
        )
    else:
        return None
    inf = math.inf
    if op in ("<", "<="):
        return name, Interval(-inf, bound)
    if op in (">", ">="):
        return name, Interval(bound, inf)
    if op == "==":
        return name, Interval(bound, bound)
    return None  # != constrains nothing representable as one interval


def _refine_env(
    a: Formula, env: Mapping[str, Interval]
) -> Tuple[Optional[Mapping[str, Interval]], bool]:
    """Intersect every bare-signal comparison conjunct of ``a`` into
    ``env``.

    Returns ``(refined_env, contradictory)``.  ``contradictory`` means
    some signal's constraints have an empty intersection, so no in-range
    row satisfies ``a`` at all.  ``refined_env`` is ``None`` when no
    conjunct narrowed anything.

    This is the re-seeding step the pairwise decomposition used to miss:
    ``implies(And(x >= 2, y >= 4), x + y > 5)`` recursed into each
    conjunct separately, so the compound consequent — decidable only
    under the *joint* refinement — always came back unknown.
    """
    refined: Dict[str, Interval] = {}
    contradictory = False
    stack = [a]
    while stack:
        node = stack.pop()
        if isinstance(node, And):
            stack.append(node.left)
            stack.append(node.right)
            continue
        constraint = _comparison_constraint(node)
        if constraint is None:
            continue
        name, interval = constraint
        known = refined.get(name, env.get(name))
        narrowed = (
            interval if known is None else intersect(known, interval)
        )
        if narrowed is None:
            contradictory = True
            break
        refined[name] = narrowed
    if not refined and not contradictory:
        return None, False
    merged = dict(env)
    merged.update(refined)
    return merged, contradictory


def implies(
    a: Formula,
    b: Formula,
    env: Mapping[str, Interval] = _EMPTY_ENV,
    _depth: int = 0,
) -> bool:
    """Try to prove that every row satisfying ``a`` satisfies ``b``.

    Returns True only when a proof was found; False means *unknown*, not
    refuted.  ``env`` maps signal names to physical ranges (see
    :func:`~repro.analysis.analyzer.database_env`) and powers the
    "statically true / false" shortcuts.
    """
    if _depth > _MAX_DEPTH:
        return False
    if a == b:
        return True
    if formula_status(b, env) == ALWAYS:
        return True
    if formula_status(a, env) == NEVER:
        return True
    if isinstance(a, Not) and isinstance(b, Not):
        if implies(b.operand, a.operand, env, _depth + 1):
            return True
    # Material implication rewrites to a disjunction on either side.
    if isinstance(a, Implies):
        if implies(Or(negate(a.left), a.right), b, env, _depth + 1):
            return True
    if isinstance(b, Implies):
        if implies(a, Or(negate(b.left), b.right), env, _depth + 1):
            return True
    # Disjunctive antecedent / conjunctive consequent need both branches.
    if isinstance(a, Or):
        if implies(a.left, b, env, _depth + 1) and implies(
            a.right, b, env, _depth + 1
        ):
            return True
    if isinstance(b, And):
        if implies(a, b.left, env, _depth + 1) and implies(
            a, b.right, env, _depth + 1
        ):
            return True
    # Conjunctive antecedent / disjunctive consequent: either branch.
    if isinstance(a, And):
        if implies(a.left, b, env, _depth + 1) or implies(
            a.right, b, env, _depth + 1
        ):
            return True
        # Re-seed the environment with the conjuncts' joint ranges: a
        # compound consequent (x + y > 5) is invisible to the pairwise
        # decomposition above but decidable once every conjunct's
        # interval is intersected in (see _refine_env).
        refined, contradictory = _refine_env(a, env)
        if contradictory:
            return True  # unsatisfiable antecedent implies anything
        if refined is not None and formula_status(b, refined) == ALWAYS:
            return True
    if isinstance(b, Or):
        if implies(a, b.left, env, _depth + 1) or implies(
            a, b.right, env, _depth + 1
        ):
            return True
    if isinstance(a, Comparison) and isinstance(b, Comparison):
        if _comparison_implies(a, b):
            return True
    # Temporal monotonicity: a wider always proves a narrower one, a
    # narrower eventually proves a wider one; same for the past duals.
    for universal, existential in ((Always, Eventually), (Historically, Once)):
        if isinstance(a, universal):
            if (
                isinstance(b, universal)
                and a.lo <= b.lo
                and b.hi <= a.hi
                and implies(a.operand, b.operand, env, _depth + 1)
            ):
                return True
            # A window starting now includes the current row.
            if a.lo == 0 and implies(a.operand, b, env, _depth + 1):
                return True
        if isinstance(b, existential):
            if (
                isinstance(a, existential)
                and b.lo <= a.lo
                and a.hi <= b.hi
                and implies(a.operand, b.operand, env, _depth + 1)
            ):
                return True
            # The current row witnesses a window starting now.
            if b.lo == 0 and implies(a, b.operand, env, _depth + 1):
                return True
    if isinstance(a, Next) and isinstance(b, Next):
        if implies(a.operand, b.operand, env, _depth + 1):
            return True
    return False


def contradicts(
    a: Formula, b: Formula, env: Mapping[str, Interval] = _EMPTY_ENV
) -> bool:
    """Try to prove ``a`` and ``b`` cannot hold on the same row
    (in-range, non-NaN model — see :func:`negate`)."""
    return implies(a, negate(b), env) or implies(b, negate(a), env)


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------


@dataclass
class AuditReport:
    """Everything ``repro audit`` found for one artifact bundle.

    Attributes:
        target: what was audited (e.g. ``"paper rules (strict)"``).
        sections: diagnostics per analysis family, each sorted
            most-severe-first (keys: ``rules``/``coverage``/``plan``).
        summary: cross-artifact size and pruning statistics.
    """

    target: str
    sections: Dict[str, List[Diagnostic]] = field(default_factory=dict)
    summary: Dict[str, int] = field(default_factory=dict)

    def diagnostics(self) -> List[Diagnostic]:
        """All findings across sections, sorted most-severe-first."""
        merged: List[Diagnostic] = []
        for section in SECTIONS:
            merged.extend(self.sections.get(section, []))
        return sort_diagnostics(merged)

    def counts(self) -> Dict[str, int]:
        """Finding counts by severity name."""
        return count_by_severity(self.diagnostics())

    @property
    def failed(self) -> bool:
        """Whether any error-level finding is present (strict gate)."""
        return has_errors(self.diagnostics())

    def codes(self) -> Tuple[str, ...]:
        """The distinct diagnostic codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics()}))

    def to_dict(self) -> Dict[str, object]:
        """The target object of the ``repro.audit/v1`` report format."""
        return {
            "name": self.target,
            "sections": {
                section: [
                    d.to_dict() for d in self.sections.get(section, [])
                ]
                for section in SECTIONS
            },
            "summary": dict(self.summary),
            "counts": self.counts(),
        }

    def format_text(self) -> str:
        """Human-readable report, one block per analysis family."""
        counts = self.counts()
        lines = [
            "audit %s: %d error(s), %d warning(s), %d info"
            % (
                self.target,
                counts["error"],
                counts["warning"],
                counts["info"],
            )
        ]
        for section in SECTIONS:
            lines.append("%s:" % _SECTION_TITLES[section])
            findings = self.sections.get(section, [])
            if not findings:
                lines.append("  (clean)")
            for diagnostic in findings:
                lines.append("  %s" % diagnostic.format())
        summary = self.summary
        lines.append(
            "summary: %d rule(s) (%d certified), %d signal(s) "
            "(%d monitored), %d planned test(s), %d statically dead, "
            "%d prunable cell(s)"
            % (
                summary.get("rules", 0),
                summary.get("certified_rules", 0),
                summary.get("signals", 0),
                summary.get("monitored_signals", 0),
                summary.get("tests", 0),
                summary.get("dead_tests", 0),
                summary.get("prunable_cells", 0),
            )
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Family 1 — rule-set verification (AU1xx)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ProverContext:
    """Everything the decision-procedure fallback needs beyond ``env``.

    The syntactic prover stays first (it is cheap and its messages name
    the entailment shape); the automata prover only retries questions
    the syntactic pass left unknown, so findings never duplicate.
    """

    machines: Tuple[StateMachine, ...] = ()
    bool_signals: FrozenSet[str] = frozenset()
    period: float = DEFAULT_PERIOD


def _automata_contradicts(
    a: Formula, b: Formula, env: Mapping[str, Interval], ctx: _ProverContext
) -> bool:
    try:
        return (
            prove_contradicts(
                a, b, machines=ctx.machines, env=env,
                bool_signals=ctx.bool_signals, period=ctx.period,
            )
            == PROVED
        )
    except Exception:
        return False  # the fallback must never break the audit


def _automata_implies(
    a: Formula, b: Formula, env: Mapping[str, Interval], ctx: _ProverContext
) -> bool:
    try:
        return (
            prove_implies(
                a, b, machines=ctx.machines, env=env,
                bool_signals=ctx.bool_signals, period=ctx.period,
            )
            == PROVED
        )
    except Exception:
        return False


def _automata_valid(
    formula: Formula, env: Mapping[str, Interval], ctx: _ProverContext
) -> bool:
    try:
        return (
            prove_valid(
                formula, machines=ctx.machines, env=env,
                bool_signals=ctx.bool_signals, period=ctx.period,
            )
            == PROVED
        )
    except Exception:
        return False


def _rule_pair_checks(
    rules: Sequence,
    env: Mapping[str, Interval],
    ctx: _ProverContext = _ProverContext(),
) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    # Contradiction and subsumption are only meaningful between rules
    # checked on the same rows, i.e. under structurally equal gates
    # (both ungated included); across different gates a conflict is
    # simply two modes with different requirements.
    by_gate: Dict[Optional[Formula], List] = {}
    for rule in rules:
        by_gate.setdefault(rule.gate, []).append(rule)
    for group in by_gate.values():
        for i, rule_a in enumerate(group):
            for rule_b in group[i + 1 :]:
                status_a = formula_status(rule_a.formula, env)
                status_b = formula_status(rule_b.formula, env)
                if status_a != MAYBE or status_b != MAYBE:
                    # Statically constant formulas are vacuity findings
                    # (AU103 / speclint), not pair conflicts.
                    continue
                if contradicts(rule_a.formula, rule_b.formula, env):
                    findings.append(
                        make_diagnostic(
                            "AU101",
                            "rule %s" % rule_a.rule_id,
                            "formula statically contradicts rule %s under "
                            "the DBC ranges: no in-range row can satisfy "
                            "both" % rule_b.rule_id,
                            suggestion=(
                                "every gated row will violate one of the "
                                "two; reconcile the bounds or split the "
                                "gates"
                            ),
                        )
                    )
                    continue
                if _automata_contradicts(
                    rule_a.formula, rule_b.formula, env, ctx
                ):
                    findings.append(
                        make_diagnostic(
                            "AU101",
                            "rule %s" % rule_a.rule_id,
                            "contradicts rule %s by decision procedure: "
                            "the product automaton of both formulas "
                            "accepts no in-range trace" % rule_b.rule_id,
                            suggestion=(
                                "every gated row will violate one of the "
                                "two; reconcile the bounds or split the "
                                "gates"
                            ),
                        )
                    )
                    continue
                findings.extend(
                    _subsumption_pair(rule_a, rule_b, env, ctx)
                )
    return findings


def _subsumption_pair(
    rule_a,
    rule_b,
    env: Mapping[str, Interval],
    ctx: _ProverContext = _ProverContext(),
) -> List[Diagnostic]:
    if rule_a.formula == rule_b.formula:
        # Identical bodies are SL702's finding, not subsumption.
        return []
    for strong, weak in ((rule_a, rule_b), (rule_b, rule_a)):
        # A filtered rule may dismiss violations the weak rule would
        # report, so only an unfiltered strong rule truly covers it.
        if strong.filters:
            continue
        if implies(strong.formula, weak.formula, env):
            return [
                make_diagnostic(
                    "AU102",
                    "rule %s" % weak.rule_id,
                    "statically subsumed by rule %s: any trace violating "
                    "%s also violates %s, so this rule adds no detection "
                    "power"
                    % (strong.rule_id, weak.rule_id, strong.rule_id),
                    suggestion=(
                        "tighten this rule's bound or drop it from the set"
                    ),
                )
            ]
        if _automata_implies(strong.formula, weak.formula, env, ctx):
            return [
                make_diagnostic(
                    "AU102",
                    "rule %s" % weak.rule_id,
                    "subsumed by rule %s by decision procedure: the "
                    "automaton for (%s and not %s) accepts no in-range "
                    "trace, so this rule adds no detection power"
                    % (strong.rule_id, strong.rule_id, weak.rule_id),
                    suggestion=(
                        "tighten this rule's bound or drop it from the set"
                    ),
                )
            ]
    return []


def _vacuity_checks(
    rules: Sequence,
    env: Mapping[str, Interval],
    ctx: _ProverContext = _ProverContext(),
) -> List[Diagnostic]:
    findings = []
    for rule in rules:
        if formula_status(rule.effective_formula(), env) == ALWAYS:
            findings.append(
                make_diagnostic(
                    "AU103",
                    "rule %s" % rule.rule_id,
                    "effective formula holds for every in-range value: "
                    "only out-of-range data could falsify it, so the "
                    "rule cannot detect in-specification misbehaviour",
                    suggestion="tighten the bound below the DBC range",
                )
            )
        elif _automata_valid(rule.effective_formula(), env, ctx):
            findings.append(
                make_diagnostic(
                    "AU103",
                    "rule %s" % rule.rule_id,
                    "effective formula is valid by decision procedure: "
                    "the automaton for its negation accepts no in-range "
                    "trace, so the rule cannot detect in-specification "
                    "misbehaviour",
                    suggestion="tighten the bound below the DBC range",
                )
            )
    return findings


def _monitorability_checks(
    rules: Sequence,
    env: Mapping[str, Interval],
    ctx: _ProverContext,
    summary: Dict[str, int],
) -> List[Diagnostic]:
    """AU6xx — certificates from the symbolic automata pass, each
    cross-checked against the online monitor's conservative horizon."""
    findings: List[Diagnostic] = []
    certified = 0
    for rule in rules:
        compiled = compile_rule(
            rule,
            machines=ctx.machines,
            env=env,
            bool_signals=ctx.bool_signals,
            period=ctx.period,
        )
        if compiled.status != "ok":
            findings.append(
                make_diagnostic(
                    "AU603",
                    "rule %s" % rule.rule_id,
                    "no monitorability certificate: automata compilation "
                    "%s (%s), so the online monitor's bounded-horizon "
                    "adequacy is assumed, not proved"
                    % (
                        "exceeded its budget"
                        if compiled.status == "budget"
                        else "is unsupported",
                        compiled.reason,
                    ),
                    suggestion=(
                        "rewrite the rule in the supported fragment or "
                        "raise the automata budgets"
                    ),
                )
            )
            continue
        certified += 1
        certificate = compiled.certificate
        assert certificate is not None
        if certificate.horizon_rows is None:
            findings.append(
                make_diagnostic(
                    "AU601",
                    "rule %s" % rule.rule_id,
                    "no finite decision horizon (class %s): some traces "
                    "keep the verdict UNKNOWN forever, so the online "
                    "monitor's bounded lookahead cannot decide the rule"
                    % certificate.classification,
                    suggestion=(
                        "bound the temporal windows, or accept that the "
                        "monitor only ever reports partial verdicts"
                    ),
                )
            )
        elif (
            compiled.monitor_horizon_rows is not None
            and certificate.horizon_rows < compiled.monitor_horizon_rows
        ):
            findings.append(
                make_diagnostic(
                    "AU602",
                    "rule %s" % rule.rule_id,
                    "monitor horizon over-provisioned: the automaton "
                    "decides every trace within %d row(s) but the online "
                    "monitor buffers %d"
                    % (
                        certificate.horizon_rows,
                        compiled.monitor_horizon_rows,
                    ),
                    suggestion=(
                        "verdict latency and memory can shrink to the "
                        "certified horizon"
                    ),
                )
            )
    summary["certified_rules"] = certified
    return findings


def _coverage_overlap_checks(graph: DependencyGraph) -> List[Diagnostic]:
    by_footprint: Dict[FrozenSet[str], List[str]] = {}
    for rule in graph.rules:
        footprint = graph.rule_signals(rule.rule_id)
        if footprint:
            by_footprint.setdefault(footprint, []).append(rule.rule_id)
    findings = []
    for footprint, rule_ids in sorted(
        by_footprint.items(), key=lambda item: item[1]
    ):
        if len(rule_ids) < 2:
            continue
        findings.append(
            make_diagnostic(
                "AU104",
                "rules %s" % ", ".join(rule_ids),
                "monitor the identical signal set {%s}"
                % ", ".join(sorted(footprint)),
                suggestion=(
                    "verify they test genuinely different properties "
                    "of these signals"
                ),
            )
        )
    return findings


# ----------------------------------------------------------------------
# Family 2 — monitoring coverage (AU2xx)
# ----------------------------------------------------------------------


def _coverage_checks(
    graph: DependencyGraph, machines: Sequence[StateMachine]
) -> List[Diagnostic]:
    findings = []
    for name in graph.unreferenced_signals():
        findings.append(
            make_diagnostic(
                "AU201",
                "signal %s" % name,
                "referenced by no rule and no machine guard: campaign "
                "rows targeting it are statically blind",
                suggestion=(
                    "add a rule over it, or document why it needs none"
                ),
            )
        )
    for machine in machines:
        for state in graph.unreferenced_states(machine.name):
            findings.append(
                make_diagnostic(
                    "AU202",
                    "machine %s" % machine.name,
                    "state %r is computed but referenced by no rule's "
                    "in_state()" % state,
                    suggestion=(
                        "bind a property to the state or drop it from "
                        "the machine"
                    ),
                )
            )
    modelled = {
        state.lower() for machine in machines for state in machine.states
    }
    missing = tuple(mode for mode in ACC_MODES if mode not in modelled)
    if missing:
        findings.append(
            make_diagnostic(
                "AU203",
                "spec set",
                "ACC operating mode(s) %s have no corresponding machine "
                "state: mode-specific properties cannot be expressed"
                % ", ".join(missing),
                suggestion=(
                    "model the operating modes as a state machine (§V-B)"
                ),
            )
        )
    return findings


# ----------------------------------------------------------------------
# Family 3 — injection-plan checks (AU3xx / AU4xx)
# ----------------------------------------------------------------------


def _ballista_checks(test, database, profile: str) -> List[Diagnostic]:
    from repro.testing.ballista import BALLISTA_FLOATS

    if test.kind not in ("Ballista", "mBallista"):
        return []
    degenerate: List[str] = []
    for target in test.targets:
        if target not in database:
            continue
        signal = database.signal(target)
        if signal.kind.value in ("bool", "enum"):
            degenerate.append(
                "%s falls back to random valid values (%s)"
                % (target, signal.kind.value)
            )
        elif profile == "hil":
            rejected = sum(
                1
                for value in BALLISTA_FLOATS
                if not signal.is_valid_value(value)
            )
            if rejected:
                degenerate.append(
                    "%s loses %d of %d dictionary values to its DBC "
                    "range" % (target, rejected, len(BALLISTA_FLOATS))
                )
    if not degenerate:
        return []
    return [
        make_diagnostic(
            "AU301",
            "test %s" % test.label,
            "; ".join(degenerate),
            suggestion=(
                "the row exercises fewer exceptional values than its "
                "label suggests"
            ),
        )
    ]


def _bitflip_checks(test, database) -> List[Diagnostic]:
    from repro.testing.bitflip import FLIP_SIZES

    if test.kind == "Bitflips":
        sizes: Tuple[int, ...] = FLIP_SIZES
    elif test.kind.startswith("mBitflip"):
        sizes = (int(test.kind[len("mBitflip") :]),)
    else:
        return []
    clipped: List[str] = []
    for target in test.targets:
        if target not in database:
            continue
        signal = database.signal(target)
        oversized = signal.clipped_flip_sizes(sizes)
        if oversized:
            clipped.append(
                "%s (%d bit%s) cannot take %s-bit flips"
                % (
                    target,
                    signal.bit_length,
                    "" if signal.bit_length == 1 else "s",
                    "/".join(str(s) for s in oversized),
                )
            )
    if not clipped:
        return []
    return [
        make_diagnostic(
            "AU302",
            "test %s" % test.label,
            "; ".join(clipped),
            suggestion=(
                "the schedule skips or clamps these sizes, so the row "
                "injects fewer faults than planned"
            ),
        )
    ]


def _plan_checks(
    plan: CampaignPlan,
    database,
    graph: DependencyGraph,
    summary: Dict[str, int],
) -> List[Diagnostic]:
    from repro.hil.typecheck import CHECKER_PROFILES

    findings: List[Diagnostic] = []
    if plan.profile not in CHECKER_PROFILES:
        findings.append(
            make_diagnostic(
                "AU401",
                "plan profile %s" % plan.profile,
                "not a registered checker profile (known: %s); the "
                "campaign would fail at construction"
                % ", ".join(sorted(CHECKER_PROFILES)),
                suggestion="pick a registered profile",
            )
        )
    rules_reached: set = set()
    all_rule_ids = [rule.rule_id for rule in graph.rules]
    for test in plan.tests:
        known: List[str] = []
        for target in test.targets:
            if target in database:
                known.append(target)
                continue
            findings.append(
                make_diagnostic(
                    "AU303",
                    "test %s" % test.label,
                    "target %r is not defined in the CAN database; the "
                    "harness would raise mid-campaign" % target,
                    suggestion="fix the target name in the plan",
                )
            )
        findings.extend(_ballista_checks(test, database, plan.profile))
        findings.extend(_bitflip_checks(test, database))
        if not known:
            continue
        dead = graph.dead_rules(known)
        rules_reached.update(graph.rules_reached(known))
        summary["prunable_cells"] += len(dead)
        if dead:
            if len(dead) == len(all_rule_ids):
                summary["dead_tests"] += 1
            findings.append(
                make_diagnostic(
                    "AU304",
                    "test %s" % test.label,
                    "cannot reach rule(s) %s through the dependency "
                    "graph: those cells cannot differ from an "
                    "uninjected run" % ", ".join(dead),
                    suggestion=(
                        "prune the cells (table1 --prune audit) or add "
                        "a rule over the injected signals"
                    ),
                )
            )
    if plan.tests:
        for rule_id in all_rule_ids:
            if rule_id not in rules_reached:
                findings.append(
                    make_diagnostic(
                        "AU403",
                        "rule %s" % rule_id,
                        "no planned test injects any signal that reaches "
                        "this rule: the campaign cannot falsify it",
                        suggestion=(
                            "add a test over the rule's input signals"
                        ),
                    )
                )
    return findings


def _margin_rule_checks(
    rule_margins: Mapping[str, Interval]
) -> List[Diagnostic]:
    """AU501/AU503 — quantitative unfalsifiability under DBC ranges."""
    from repro.analysis.margins import TIGHT_MARGIN

    findings = []
    for rule_id, interval in rule_margins.items():
        if interval.lo > TIGHT_MARGIN:
            findings.append(
                make_diagnostic(
                    "AU501",
                    "rule %s" % rule_id,
                    "static robustness margin stays at or above %g for "
                    "every in-range trace: the rule is quantitatively "
                    "unfalsifiable by in-specification data" % interval.lo,
                    suggestion=(
                        "tighten the bound by at least the reported "
                        "margin, or rely on injections to exercise it"
                    ),
                )
            )
        elif interval.lo > 0:
            findings.append(
                make_diagnostic(
                    "AU503",
                    "rule %s" % rule_id,
                    "static robustness lower bound %g is positive but "
                    "within the tightness epsilon %g: unfalsifiable "
                    "only by a sliver of margin"
                    % (interval.lo, TIGHT_MARGIN),
                    suggestion=(
                        "check whether modelling slack (ranges, held "
                        "samples, rounding) hides a falsifiable rule"
                    ),
                )
            )
    return findings


def _margin_plan_checks(
    plan: CampaignPlan,
    database,
    rules: Sequence,
    machines: Sequence[StateMachine],
    graph: DependencyGraph,
    period: float,
    summary: Dict[str, int],
) -> List[Diagnostic]:
    """AU502 — per-cell margin intervals under injection-widened ranges.

    Also feeds the ``doomed_cells`` / ``margin_prunable_cells`` summary
    counters.  Tests with unknown targets are skipped (AU303 already
    flags them, and the harness could never run the cell).
    """
    from repro.analysis.margins import MarginEnv, cell_env, rule_margin

    findings: List[Diagnostic] = []
    env_cache: Dict[Tuple[str, ...], Optional[MarginEnv]] = {}
    for test in plan.tests:
        targets = tuple(test.targets)
        if targets not in env_cache:
            env_cache[targets] = cell_env(database, targets, graph)
        env = env_cache[targets]
        if env is None:
            continue
        doomed: List[str] = []
        for rule in rules:
            interval = rule_margin(
                rule, env, period=period, machines=machines
            )
            if interval.hi < 0:
                doomed.append(rule.rule_id)
            if interval.lo > 0:
                summary["margin_prunable_cells"] += 1
        summary["doomed_cells"] += len(doomed)
        if doomed:
            findings.append(
                make_diagnostic(
                    "AU502",
                    "test %s" % test.label,
                    "static margins prove rule(s) %s violate on every "
                    "monitored row under this test's injection-widened "
                    "ranges: the raw cell result is predetermined by "
                    "the spec, not the system" % ", ".join(doomed),
                    suggestion=(
                        "fix the rule bound, or drop the cell — it "
                        "cannot measure injected behaviour"
                    ),
                )
            )
    return findings


def _sampling_checks(
    graph: DependencyGraph, database, period: float
) -> List[Diagnostic]:
    findings = []
    for name in sorted(graph.referenced_signals()):
        if name not in database:
            continue
        broadcast = database.message_for_signal(name).period
        if period > broadcast:
            findings.append(
                make_diagnostic(
                    "AU402",
                    "signal %s" % name,
                    "broadcast every %gs but the monitor samples every "
                    "%gs: transient violations can fall between rows"
                    % (broadcast, period),
                    suggestion=(
                        "monitor at the fast message period or justify "
                        "the undersampling"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def audit_rules(
    rules: Sequence,
    machines: Sequence[StateMachine] = (),
    database=None,
    plan: Optional[CampaignPlan] = None,
    period: Optional[float] = None,
    target: str = "rule set",
) -> AuditReport:
    """Audit in-memory rules, machines, database and plan together.

    ``database=None`` loads the bundled FSRACC database — the audit is
    cross-artifact by definition, so there is always a signal universe.
    ``period`` defaults to the plan's period (or the monitor default).
    """
    if database is None:
        from repro.can.fsracc import fsracc_database

        database = fsracc_database()
    if period is None:
        period = plan.period if plan is not None else DEFAULT_PERIOD
    rules = list(rules)
    machines = list(machines)
    env = database_env(database)
    _, bool_signals = dbc_environment(database)
    ctx = _ProverContext(
        machines=tuple(machines),
        bool_signals=bool_signals,
        period=period,
    )
    graph = DependencyGraph(database, rules, machines)

    summary: Dict[str, int] = {
        "rules": len(rules),
        "machines": len(machines),
        "signals": len(database.signal_names()),
        "monitored_signals": sum(
            1 for name in database.signal_names()
            if name in graph.referenced_signals()
        ),
        "tests": len(plan.tests) if plan is not None else 0,
        "dead_tests": 0,
        "prunable_cells": 0,
        "provably_safe_rules": 0,
        "margin_prunable_cells": 0,
        "doomed_cells": 0,
        "certified_rules": 0,
    }

    from repro.analysis.margins import margin_env, rule_margin

    menv = margin_env(database)
    rule_margins = {
        rule.rule_id: rule_margin(
            rule, menv, period=period, machines=machines
        )
        for rule in rules
    }
    summary["provably_safe_rules"] = sum(
        1 for interval in rule_margins.values() if interval.lo > 0
    )

    rule_findings = _rule_pair_checks(rules, env, ctx)
    rule_findings.extend(_vacuity_checks(rules, env, ctx))
    rule_findings.extend(_monitorability_checks(rules, env, ctx, summary))
    rule_findings.extend(_coverage_overlap_checks(graph))
    rule_findings.extend(_margin_rule_checks(rule_margins))

    coverage_findings = _coverage_checks(graph, machines)

    plan_findings = _sampling_checks(graph, database, period)
    if plan is not None:
        plan_findings.extend(_plan_checks(plan, database, graph, summary))
        plan_findings.extend(
            _margin_plan_checks(
                plan, database, rules, machines, graph, period, summary
            )
        )

    return AuditReport(
        target=target,
        sections={
            "rules": sort_diagnostics(rule_findings),
            "coverage": sort_diagnostics(coverage_findings),
            "plan": sort_diagnostics(plan_findings),
        },
        summary=summary,
    )


def audit_specs(
    specs,
    database=None,
    plan: Optional[CampaignPlan] = None,
    period: Optional[float] = None,
    target: str = "spec set",
) -> AuditReport:
    """Audit a loaded :class:`~repro.core.specfile.SpecSet`."""
    return audit_rules(
        specs.rules,
        machines=specs.machines,
        database=database,
        plan=plan,
        period=period,
        target=target,
    )
