"""Generic AST traversal shared by every check.

Built on the ``children()`` hook of :mod:`repro.core.ast` nodes: no
per-class dispatch here, so new node types are walked automatically.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple, Type, TypeVar, Union

from repro.core.ast import Expr, Formula, Node

N = TypeVar("N", bound=Union[Expr, Formula])


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of ``node`` and all its descendants."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))


def iter_nodes(node: Node, *types: Type[N]) -> Iterator[N]:
    """All descendants of ``node`` (including itself) of the given types."""
    for current in walk(node):
        if isinstance(current, tuple(types)):
            yield current  # type: ignore[misc]


def contains(node: Node, predicate: Callable[[Node], bool]) -> bool:
    """Whether any descendant (including ``node``) satisfies ``predicate``."""
    return any(predicate(current) for current in walk(node))


def signal_uses(node: Node) -> Iterator[Tuple[str, Node]]:
    """``(signal_name, referencing node)`` pairs across the subtree.

    Unlike ``node.signals()`` this keeps the referencing node, so checks
    can distinguish a bare boolean atom from an arithmetic reference or a
    trace function.
    """
    from repro.core.ast import Fresh, SignalPredicate, SignalRef, TraceFunc

    for current in walk(node):
        if isinstance(current, (SignalRef, SignalPredicate, Fresh)):
            yield current.name, current
        elif isinstance(current, TraceFunc):
            yield current.signal, current
