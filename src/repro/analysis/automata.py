"""Symbolic monitor automata — the decision-procedure backbone.

Every rule of the spec language compiles to a **deterministic finite
automaton over the predicate alphabet** of
:mod:`repro.analysis.predicates`: states are Brzozowski residuals of
the formula (what must still hold of the remaining trace), letters are
coherent truth assignments to the rule's atoms, and ``in_state``
references are expanded by running the referenced state machine in
lockstep inside the product state.  Three decision procedures ride on
the construction:

* **monitorability certificates** — each rule is classified
  ``bounded`` / ``safety`` / ``co-safety`` / ``neither`` and, for
  bounded rules, given its *exact* decision horizon in rows (the
  longest letter sequence before every verdict is forced), which the
  audit cross-checks against the conservative
  :class:`~repro.core.online.OnlineMonitor` horizon;
* an **emptiness/containment prover** — ``a`` contradicts ``b`` iff
  the automaton of ``a ∧ b`` cannot reach its accepting sink (and
  cannot loop satisfied forever); ``a`` implies ``b`` iff ``a ∧ ¬b``
  is empty — upgrading the syntactic AU1xx checks to
  language-theoretic proofs;
* **observable-signal reduction** — a signal is droppable for a rule
  when no reachable state distinguishes letters that differ only in
  that signal's atoms, which the fleet rollup surfaces as a
  per-stream bandwidth hint.

Temporal windows are normalized to integer row counts through
:func:`~repro.core.windows.bounds_to_rows` first, so one automaton is
valid for exactly one sampling period.  Bounded windows strictly
shrink with every derivative, so bounded formulas always yield acyclic
automata; cycles can only be introduced by *unbounded* windows
(``hi = inf``), which the surface grammar cannot write but the AST
admits.  Cycle states are judged by a Kleene *suspension verdict*
(unbounded until pending forever is false, unbounded release pending
forever is true); where that evaluation is indeterminate the
classifier degrades to ``neither`` and the provers to ``unknown`` —
conservative, never unsound.

Soundness contract (shared with the syntactic audit prover and the
margin prover): verdicts hold for in-range, non-NaN data under
classical comparison negation.  The letter set over-approximates
feasibility (see :mod:`repro.analysis.predicates`), so ``prove_*``
answers "proved" only when *no* letter sequence — feasible or not —
reaches a satisfying verdict.  Past operators (``once`` /
``historically``) are outside the compiled fragment and reported as
unsupported; the syntactic prover remains the fallback for them.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.intervals import Interval
from repro.analysis.predicates import (
    Alphabet,
    AlphabetError,
    MAX_ALPHABET_ATOMS,
    build_alphabet,
    collect_atoms,
    dbc_environment,
    evaluate_proposition,
)
from repro.core.ast import (
    Always,
    And,
    BoolConst,
    Comparison,
    Eventually,
    Formula,
    Fresh,
    Historically,
    Implies,
    InState,
    Next,
    Not,
    Once,
    Or,
    SignalPredicate,
)
from repro.core.monitor import DEFAULT_PERIOD
from repro.core.statemachine import StateMachine
from repro.core.windows import bounds_to_rows
from repro.errors import EvaluationError

#: Default cap on DFA states per compilation (product states included).
DEFAULT_STATE_BUDGET = 20000

#: Tri-state decision-procedure verdicts.
YES = "yes"
NO = "no"
UNKNOWN = "unknown"

#: Monitorability classes.
BOUNDED = "bounded"
SAFETY = "safety"
CO_SAFETY = "co-safety"
NEITHER = "neither"


class UnsupportedFormulaError(Exception):
    """The formula is outside the compiled fragment."""


class StateBudgetError(Exception):
    """Compilation exceeded the state budget."""


# ----------------------------------------------------------------------
# The residual term IR
# ----------------------------------------------------------------------


class Term:
    """Base class of residual terms (negation-normal form)."""

    __slots__ = ()


@dataclass(frozen=True)
class _Const(Term):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


TT = _Const(True)
FF = _Const(False)


@dataclass(frozen=True)
class Lit(Term):
    """Atom ``index`` of the alphabet, possibly negated."""

    index: int
    positive: bool

    def __str__(self) -> str:
        return "a%d" % self.index if self.positive else "!a%d" % self.index


@dataclass(frozen=True)
class MLit(Term):
    """``in_state(machine, state)`` — resolved against the product's
    machine component, not the alphabet."""

    machine: str
    state: str
    positive: bool

    def __str__(self) -> str:
        body = "%s=%s" % (self.machine, self.state)
        return body if self.positive else "!(%s)" % body


@dataclass(frozen=True)
class Conj(Term):
    operands: FrozenSet[Term]

    def __str__(self) -> str:
        return "(%s)" % " & ".join(sorted(str(o) for o in self.operands))


@dataclass(frozen=True)
class Disj(Term):
    operands: FrozenSet[Term]

    def __str__(self) -> str:
        return "(%s)" % " | ".join(sorted(str(o) for o in self.operands))


@dataclass(frozen=True)
class Delay(Term):
    """``operand`` shifted ``steps`` rows into the future (``next``)."""

    steps: int
    operand: Term

    def __str__(self) -> str:
        return "X^%d %s" % (self.steps, self.operand)


@dataclass(frozen=True)
class Until(Term):
    """``left U[lo, hi] right`` over rows; ``hi=None`` is unbounded.

    Semantics: some row ``k`` in ``[lo, hi]`` satisfies ``right`` and
    every earlier row (from 0) satisfies ``left``.
    """

    lo: int
    hi: Optional[int]
    left: Term
    right: Term

    def __str__(self) -> str:
        hi = "inf" if self.hi is None else str(self.hi)
        return "(%s U[%d,%s] %s)" % (self.left, self.lo, hi, self.right)


@dataclass(frozen=True)
class Release(Term):
    """The dual: ``right`` holds at every row of ``[lo, hi]`` unless an
    earlier row satisfied ``left`` (for ``always``, ``left`` is false)."""

    lo: int
    hi: Optional[int]
    left: Term
    right: Term

    def __str__(self) -> str:
        hi = "inf" if self.hi is None else str(self.hi)
        return "(%s R[%d,%s] %s)" % (self.left, self.lo, hi, self.right)


def conj(operands: Iterable[Term]) -> Term:
    """N-ary conjunction: flatten, absorb constants, prune complements."""
    flat: Set[Term] = set()
    for operand in operands:
        if operand == FF:
            return FF
        if operand == TT:
            continue
        if isinstance(operand, Conj):
            flat |= operand.operands
        else:
            flat.add(operand)
    for term in flat:
        if isinstance(term, Lit) and Lit(term.index, not term.positive) in flat:
            return FF
        if isinstance(term, MLit) and (
            MLit(term.machine, term.state, not term.positive) in flat
        ):
            return FF
    if not flat:
        return TT
    if len(flat) == 1:
        return next(iter(flat))
    return Conj(frozenset(flat))


def disj(operands: Iterable[Term]) -> Term:
    """N-ary disjunction, dual of :func:`conj`."""
    flat: Set[Term] = set()
    for operand in operands:
        if operand == TT:
            return TT
        if operand == FF:
            continue
        if isinstance(operand, Disj):
            flat |= operand.operands
        else:
            flat.add(operand)
    for term in flat:
        if isinstance(term, Lit) and Lit(term.index, not term.positive) in flat:
            return TT
        if isinstance(term, MLit) and (
            MLit(term.machine, term.state, not term.positive) in flat
        ):
            return TT
    if not flat:
        return FF
    if len(flat) == 1:
        return next(iter(flat))
    return Disj(frozenset(flat))


def delay(steps: int, operand: Term) -> Term:
    if steps == 0 or operand in (TT, FF):
        return operand
    if isinstance(operand, Delay):
        return Delay(steps + operand.steps, operand.operand)
    return Delay(steps, operand)


def until(lo: int, hi: Optional[int], left: Term, right: Term) -> Term:
    if right == FF:
        return FF
    if right == TT and (lo == 0 or left == TT):
        return TT
    return Until(lo, hi, left, right)


def release(lo: int, hi: Optional[int], left: Term, right: Term) -> Term:
    if right == TT:
        return TT
    if right == FF and (lo == 0 or left == FF):
        return FF
    return Release(lo, hi, left, right)


def neg_term(term: Term) -> Term:
    """Classical negation, dualizing the NNF structure."""
    if term == TT:
        return FF
    if term == FF:
        return TT
    if isinstance(term, Lit):
        return Lit(term.index, not term.positive)
    if isinstance(term, MLit):
        return MLit(term.machine, term.state, not term.positive)
    if isinstance(term, Conj):
        return disj(neg_term(o) for o in term.operands)
    if isinstance(term, Disj):
        return conj(neg_term(o) for o in term.operands)
    if isinstance(term, Delay):
        return delay(term.steps, neg_term(term.operand))
    if isinstance(term, Until):
        return release(
            term.lo, term.hi, neg_term(term.left), neg_term(term.right)
        )
    if isinstance(term, Release):
        return until(
            term.lo, term.hi, neg_term(term.left), neg_term(term.right)
        )
    raise TypeError("not a term: %r" % (term,))


def _dec(hi: Optional[int]) -> Optional[int]:
    return None if hi is None else hi - 1


class _Assignment:
    """One letter's resolved truth: alphabet atoms plus the machine
    states *after* this row's transition (``run()`` updates the state
    with the row's values before ``in_state`` reads it)."""

    __slots__ = ("bits", "states")

    def __init__(self, bits: int, states: Mapping[str, str]) -> None:
        self.bits = bits
        self.states = states

    def lit(self, index: int) -> bool:
        return bool((self.bits >> index) & 1)

    def mlit(self, machine: str, state: str) -> bool:
        return self.states[machine] == state


def step_term(term: Term, assign: _Assignment) -> Term:
    """The Brzozowski derivative: what the rows after this one must
    satisfy, given this row's letter."""
    if term in (TT, FF):
        return term
    if isinstance(term, Lit):
        return TT if assign.lit(term.index) == term.positive else FF
    if isinstance(term, MLit):
        return TT if assign.mlit(term.machine, term.state) == term.positive else FF
    if isinstance(term, Conj):
        return conj(step_term(o, assign) for o in term.operands)
    if isinstance(term, Disj):
        return disj(step_term(o, assign) for o in term.operands)
    if isinstance(term, Delay):
        return delay(term.steps - 1, term.operand)
    if isinstance(term, Until):
        if term.lo > 0:
            return conj(
                (
                    step_term(term.left, assign),
                    until(term.lo - 1, _dec(term.hi), term.left, term.right),
                )
            )
        now = step_term(term.right, assign)
        if term.hi == 0:
            return now
        rest = conj(
            (
                step_term(term.left, assign),
                until(0, _dec(term.hi), term.left, term.right),
            )
        )
        return disj((now, rest))
    if isinstance(term, Release):
        if term.lo > 0:
            return disj(
                (
                    step_term(term.left, assign),
                    release(term.lo - 1, _dec(term.hi), term.left, term.right),
                )
            )
        now = step_term(term.right, assign)
        if term.hi == 0:
            return now
        rest = disj(
            (
                step_term(term.left, assign),
                release(0, _dec(term.hi), term.left, term.right),
            )
        )
        return conj((now, rest))
    raise TypeError("not a term: %r" % (term,))


def _suspension(term: Term) -> Optional[bool]:
    """Kleene limit verdict if the run stays in this state forever.

    An unbounded ``until`` whose witness never arrives is false; an
    unbounded ``release`` never discharged is true.  Anything that
    cannot persist in a cycle (literals, delays, bounded windows) is
    indeterminate — callers treat ``None`` conservatively.
    """
    if term == TT:
        return True
    if term == FF:
        return False
    if isinstance(term, Until):
        return False if term.hi is None else None
    if isinstance(term, Release):
        return True if term.hi is None else None
    if isinstance(term, Conj):
        verdicts = {_suspension(o) for o in term.operands}
        if False in verdicts:
            return False
        if verdicts == {True}:
            return True
        return None
    if isinstance(term, Disj):
        verdicts = {_suspension(o) for o in term.operands}
        if True in verdicts:
            return True
        if verdicts == {False}:
            return False
        return None
    return None


# ----------------------------------------------------------------------
# Formula → term translation
# ----------------------------------------------------------------------


def _window_rows(
    lo: float, hi: float, period: float
) -> Tuple[int, Optional[int]]:
    """Integer row bounds of a ``[lo, hi]`` seconds window."""
    if math.isinf(hi):
        return (int(math.ceil(lo / period - 1e-9)), None)
    return bounds_to_rows(lo, hi, period)


def formula_to_term(
    formula: Formula,
    alphabet: Alphabet,
    period: float,
) -> Term:
    """Translate a formula into the residual IR over ``alphabet``.

    Raises :class:`UnsupportedFormulaError` for past operators and
    :class:`~repro.errors.EvaluationError` for windows that contain no
    sample row at ``period``.
    """
    index: Dict[Formula, int] = {
        atom: i for i, atom in enumerate(alphabet.atoms)
    }

    def build(node: Formula, positive: bool) -> Term:
        if isinstance(node, BoolConst):
            return TT if node.value == positive else FF
        if isinstance(node, (Comparison, SignalPredicate, Fresh)):
            return Lit(index[node], positive)
        if isinstance(node, InState):
            return MLit(node.machine, node.state, positive)
        if isinstance(node, Not):
            return build(node.operand, not positive)
        if isinstance(node, And):
            parts = (build(node.left, positive), build(node.right, positive))
            return conj(parts) if positive else disj(parts)
        if isinstance(node, Or):
            parts = (build(node.left, positive), build(node.right, positive))
            return disj(parts) if positive else conj(parts)
        if isinstance(node, Implies):
            parts = (
                build(node.left, not positive),
                build(node.right, positive),
            )
            return disj(parts) if positive else conj(parts)
        if isinstance(node, Next):
            return delay(1, build(node.operand, positive))
        if isinstance(node, Always):
            lo, hi = _window_rows(node.lo, node.hi, period)
            operand = build(node.operand, positive)
            if positive:
                return release(lo, hi, FF, operand)
            return until(lo, hi, TT, operand)
        if isinstance(node, Eventually):
            lo, hi = _window_rows(node.lo, node.hi, period)
            operand = build(node.operand, positive)
            if positive:
                return until(lo, hi, TT, operand)
            return release(lo, hi, FF, operand)
        if isinstance(node, (Once, Historically)):
            raise UnsupportedFormulaError(
                "past operator %s is outside the automata fragment"
                % type(node).__name__.lower()
            )
        raise UnsupportedFormulaError(
            "cannot compile %s" % type(node).__name__
        )

    return build(formula, True)


# ----------------------------------------------------------------------
# The automaton
# ----------------------------------------------------------------------


@dataclass
class Automaton:
    """A compiled deterministic automaton over a predicate alphabet.

    ``states[i]`` is the ``(residual term, machine states)`` product
    state; ``transitions[i][p]`` is the successor under letter
    *position* ``p`` (an index into ``alphabet.letters``, not the raw
    bitmask).  State 0 is initial; the TT/FF sinks, when reachable,
    collapse their machine component.
    """

    alphabet: Alphabet
    machines: Tuple[StateMachine, ...]
    states: List[Tuple[Term, Tuple[str, ...]]]
    transitions: List[Tuple[int, ...]]
    accept: Optional[int]
    reject: Optional[int]
    #: Entry state per machine-state combination.  A rule is re-checked
    #: at every row, where its machines may be anywhere — so the
    #: automaton is compiled from *every* combination, and state 0 is
    #: the machine-initial entry.  Decision procedures quantify over
    #: all entries, which keeps their "no"/horizon answers sound at
    #: any starting row.
    initials: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    _letter_position: Dict[int, int] = field(default_factory=dict, repr=False)
    _cycle_cache: Optional[List[List[int]]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self._letter_position:
            self._letter_position = {
                mask: pos for pos, mask in enumerate(self.alphabet.letters)
            }
        if not self.initials:
            self.initials = {(): 0}

    @property
    def n_states(self) -> int:
        return len(self.states)

    def is_sink(self, state: int) -> bool:
        return state in (self.accept, self.reject)

    def verdict(self, state: int) -> Optional[bool]:
        """``True``/``False`` at a sink, ``None`` while undecided."""
        if state == self.accept:
            return True
        if state == self.reject:
            return False
        return None

    def step(self, state: int, letter_mask: int) -> int:
        """Successor under a raw letter bitmask.

        Raises ``KeyError`` when the mask was pruned as incoherent —
        on real in-range data that indicates a filter bug, and the
        differential harness asserts it never happens.
        """
        return self.transitions[state][self._letter_position[letter_mask]]

    def run(
        self,
        letter_masks: Iterable[int],
        machine_states: Optional[Tuple[str, ...]] = None,
    ) -> Optional[bool]:
        """Verdict after consuming ``letter_masks`` (``None`` when the
        word ends undecided).  ``machine_states`` picks the entry for a
        mid-trace start; the default is the machine-initial entry."""
        if machine_states is None:
            state = 0
        else:
            state = self.initials[machine_states]
        for mask in letter_masks:
            state = self.step(state, mask)
            if self.is_sink(state):
                break
        return self.verdict(state)

    # -- structure ------------------------------------------------------

    def cyclic_sccs(self) -> List[List[int]]:
        """Non-sink strongly connected components that contain a cycle
        (size > 1, or a self-loop), iterative Tarjan."""
        if self._cycle_cache is not None:
            return self._cycle_cache
        n = self.n_states
        index_of = [-1] * n
        low = [0] * n
        on_stack = [False] * n
        stack: List[int] = []
        sccs: List[List[int]] = []
        counter = 0
        for root in range(n):
            if index_of[root] != -1 or self.is_sink(root):
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, child_pos = work.pop()
                if child_pos == 0:
                    index_of[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack[node] = True
                recurse = False
                successors = self.transitions[node]
                while child_pos < len(successors):
                    succ = successors[child_pos]
                    child_pos += 1
                    if self.is_sink(succ):
                        continue
                    if index_of[succ] == -1:
                        work.append((node, child_pos))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if on_stack[succ]:
                        low[node] = min(low[node], index_of[succ])
                if recurse:
                    continue
                if low[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or any(
                        succ == node for succ in self.transitions[node]
                    ):
                        sccs.append(component)
                else:
                    # propagate low to the parent on the work stack
                    pass
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        self._cycle_cache = sccs
        return sccs

    def horizon_rows(self) -> Optional[int]:
        """Exact decision horizon: the longest letter sequence from any
        entry state before a sink is reached, or ``None`` when a
        reachable cycle makes it unbounded."""
        if self.cyclic_sccs():
            return None
        depth: Dict[int, int] = {}
        order: List[int] = []
        seen: Set[int] = set()
        stack: List[Tuple[int, bool]] = [
            (entry, False) for entry in self.initials.values()
        ]
        while stack:
            node, done = stack.pop()
            if done:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            if not self.is_sink(node):
                for succ in self.transitions[node]:
                    if succ not in seen:
                        stack.append((succ, False))
        for node in order:  # reverse-post-order: children first
            if self.is_sink(node):
                depth[node] = 0
            else:
                depth[node] = 1 + max(
                    depth[succ] for succ in self.transitions[node]
                )
        return max(depth[entry] for entry in self.initials.values())

    # -- decision procedures --------------------------------------------

    def _scc_verdicts(self) -> List[Set[Optional[bool]]]:
        return [
            {_suspension(self.states[member][0]) for member in scc}
            for scc in self.cyclic_sccs()
        ]

    def satisfiable(self) -> str:
        """Can any letter sequence satisfy the formula? (tri-state)

        ``"no"`` is a *proof* of emptiness over all letter sequences
        (hence over all real traces); ``"yes"`` may rest on letters the
        coherence filter failed to prune, so callers must not treat it
        as a constructive witness.
        """
        if self.accept is not None:
            return YES
        verdicts = self._scc_verdicts()
        if any(v == {True} for v in verdicts):
            return YES
        if any(True in v or None in v for v in verdicts):
            return UNKNOWN
        return NO

    def falsifiable(self) -> str:
        """Can any letter sequence violate the formula? (tri-state)"""
        if self.reject is not None:
            return YES
        verdicts = self._scc_verdicts()
        if any(v == {False} for v in verdicts):
            return YES
        if any(False in v or None in v for v in verdicts):
            return UNKNOWN
        return NO

    def classify(self) -> Tuple[str, bool, bool]:
        """``(class, safety, co_safety)`` of the compiled language."""
        verdicts = self._scc_verdicts()
        if not verdicts:
            return (BOUNDED, True, True)
        safety = all(v == {True} for v in verdicts)
        co_safety = all(v == {False} for v in verdicts)
        if safety:
            return (SAFETY, True, False)
        if co_safety:
            return (CO_SAFETY, False, True)
        return (NEITHER, False, False)


def _advance_machine(
    machine: StateMachine,
    state: str,
    truth: Mapping[Formula, bool],
) -> str:
    """One :meth:`StateMachine.run` step: the first transition out of
    ``state`` (declaration order) whose guard holds fires."""
    for transition in machine.transitions:
        if transition.source != state:
            continue
        if evaluate_proposition(transition.guard, truth):
            return transition.target
    return state


def compile_term(
    term: Term,
    alphabet: Alphabet,
    machines: Sequence[StateMachine] = (),
    max_states: int = DEFAULT_STATE_BUDGET,
) -> Automaton:
    """Determinize ``term`` over ``alphabet`` by derivative exploration.

    ``machines`` are the state machines referenced by ``MLit`` terms;
    their joint state is tracked in the product.  Raises
    :class:`StateBudgetError` past ``max_states``.
    """
    machines = tuple(machines)
    # Per letter: the atom-truth map (for guards) and the bit accessor.
    truth_maps: List[Dict[Formula, bool]] = []
    for mask in alphabet.letters:
        truth_maps.append(
            {
                atom: bool((mask >> i) & 1)
                for i, atom in enumerate(alphabet.atoms)
            }
        )

    initial_machine_state = tuple(machine.initial for machine in machines)
    sink_key: Tuple[str, ...] = ()

    def state_key(term_: Term, mstates: Tuple[str, ...]):
        if term_ in (TT, FF):
            return (term_, sink_key)
        return (term_, mstates)

    states: List[Tuple[Term, Tuple[str, ...]]] = []
    indices: Dict[Tuple[Term, Tuple[str, ...]], int] = {}
    transitions: List[Tuple[int, ...]] = []

    def intern(key: Tuple[Term, Tuple[str, ...]]) -> int:
        found = indices.get(key)
        if found is not None:
            return found
        if len(states) >= max_states:
            raise StateBudgetError(
                "automaton exceeds the %d-state budget" % max_states
            )
        indices[key] = len(states)
        states.append(key)
        transitions.append(())
        return indices[key]

    # One entry per machine-state combination (machine-initial first, as
    # state 0): rules restart at every row, so the machines may be in
    # any state when the word begins.
    combos: List[Tuple[str, ...]] = [initial_machine_state]
    for combo in itertools.product(*(machine.states for machine in machines)):
        if combo != initial_machine_state:
            combos.append(combo)
    initials: Dict[Tuple[str, ...], int] = {}
    for combo in combos:
        initials[combo] = intern(state_key(term, combo))
    frontier = list(initials.values())
    explored: Set[int] = set()
    while frontier:
        current = frontier.pop()
        if current in explored:
            continue
        explored.add(current)
        current_term, current_mstates = states[current]
        if current_term in (TT, FF):
            transitions[current] = tuple(
                current for _ in alphabet.letters
            )
            continue
        row: List[int] = []
        for pos, mask in enumerate(alphabet.letters):
            truth = truth_maps[pos]
            new_mstates = tuple(
                _advance_machine(machine, mstate, truth)
                for machine, mstate in zip(machines, current_mstates)
            )
            assign = _Assignment(
                mask,
                {m.name: s for m, s in zip(machines, new_mstates)},
            )
            successor_term = step_term(current_term, assign)
            successor = intern(state_key(successor_term, new_mstates))
            row.append(successor)
            if successor not in explored:
                frontier.append(successor)
        transitions[current] = tuple(row)

    accept = indices.get((TT, sink_key))
    reject = indices.get((FF, sink_key))
    return Automaton(
        alphabet=alphabet,
        machines=machines,
        states=states,
        transitions=transitions,
        accept=accept,
        reject=reject,
        initials=initials,
    )


def _machine_map(
    machines: Sequence[StateMachine],
) -> Dict[str, StateMachine]:
    return {machine.name: machine for machine in machines}


def compile_formulas(
    formulas: Sequence[Formula],
    machines: Sequence[StateMachine] = (),
    env: Optional[Mapping[str, Interval]] = None,
    bool_signals: FrozenSet[str] = frozenset(),
    period: float = DEFAULT_PERIOD,
    max_states: int = DEFAULT_STATE_BUDGET,
    max_atoms: int = MAX_ALPHABET_ATOMS,
) -> Tuple[Alphabet, Tuple[StateMachine, ...], List[Term]]:
    """Shared alphabet and residual terms for several formulas.

    The alphabet covers the union of the formulas' atoms so that their
    terms can be combined (conjunction, negation) and compiled against
    one another — the basis of the containment prover.
    """
    by_name = _machine_map(machines)
    _, machine_names = collect_atoms(formulas, by_name)
    alphabet = build_alphabet(
        formulas, by_name, env=env, bool_signals=bool_signals,
        max_atoms=max_atoms,
    )
    used = tuple(by_name[name] for name in machine_names)
    terms = [
        formula_to_term(formula, alphabet, period) for formula in formulas
    ]
    del max_states  # budget applies at compile_term time
    return alphabet, used, terms


def compile_formula(
    formula: Formula,
    machines: Sequence[StateMachine] = (),
    env: Optional[Mapping[str, Interval]] = None,
    bool_signals: FrozenSet[str] = frozenset(),
    period: float = DEFAULT_PERIOD,
    max_states: int = DEFAULT_STATE_BUDGET,
    max_atoms: int = MAX_ALPHABET_ATOMS,
) -> Automaton:
    """Compile one formula to its automaton (see module docstring)."""
    alphabet, used, terms = compile_formulas(
        [formula], machines, env=env, bool_signals=bool_signals,
        period=period, max_atoms=max_atoms,
    )
    return compile_term(terms[0], alphabet, used, max_states=max_states)


# ----------------------------------------------------------------------
# The provers
# ----------------------------------------------------------------------

PROVED = "proved"


def _decide(
    formulas: Sequence[Formula],
    combine,
    machines: Sequence[StateMachine],
    env: Optional[Mapping[str, Interval]],
    bool_signals: FrozenSet[str],
    period: float,
    max_states: int,
) -> str:
    try:
        alphabet, used, terms = compile_formulas(
            formulas, machines, env=env, bool_signals=bool_signals,
            period=period,
        )
        automaton = compile_term(
            combine(terms), alphabet, used, max_states=max_states
        )
    except (
        AlphabetError,
        UnsupportedFormulaError,
        StateBudgetError,
        EvaluationError,
    ):
        return UNKNOWN
    status = automaton.satisfiable()
    return PROVED if status == NO else UNKNOWN


def prove_contradicts(
    a: Formula,
    b: Formula,
    machines: Sequence[StateMachine] = (),
    env: Optional[Mapping[str, Interval]] = None,
    bool_signals: FrozenSet[str] = frozenset(),
    period: float = DEFAULT_PERIOD,
    max_states: int = DEFAULT_STATE_BUDGET,
) -> str:
    """``"proved"`` when no in-range trace satisfies ``a`` and ``b`` at
    the same starting row; ``"unknown"`` otherwise."""
    return _decide(
        [a, b], lambda terms: conj(terms), machines, env, bool_signals,
        period, max_states,
    )


def prove_implies(
    a: Formula,
    b: Formula,
    machines: Sequence[StateMachine] = (),
    env: Optional[Mapping[str, Interval]] = None,
    bool_signals: FrozenSet[str] = frozenset(),
    period: float = DEFAULT_PERIOD,
    max_states: int = DEFAULT_STATE_BUDGET,
) -> str:
    """``"proved"`` when every in-range trace satisfying ``a`` at a row
    satisfies ``b`` there too (emptiness of ``a ∧ ¬b``)."""
    return _decide(
        [a, b],
        lambda terms: conj((terms[0], neg_term(terms[1]))),
        machines, env, bool_signals, period, max_states,
    )


def prove_valid(
    formula: Formula,
    machines: Sequence[StateMachine] = (),
    env: Optional[Mapping[str, Interval]] = None,
    bool_signals: FrozenSet[str] = frozenset(),
    period: float = DEFAULT_PERIOD,
    max_states: int = DEFAULT_STATE_BUDGET,
) -> str:
    """``"proved"`` when no in-range trace can falsify ``formula`` —
    the decision-procedure form of the vacuity check."""
    return _decide(
        [formula],
        lambda terms: neg_term(terms[0]),
        machines, env, bool_signals, period, max_states,
    )


# ----------------------------------------------------------------------
# Observable-signal reduction
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Observability:
    """Which of a rule's signals its automaton actually distinguishes.

    ``droppable`` signals can be removed from the stream without
    changing the rule's language: no reachable state maps two letters
    differing only in that signal's atoms to different successors.
    ``required`` is the complement within ``referenced``.
    """

    referenced: Tuple[str, ...]
    required: Tuple[str, ...]
    droppable: Tuple[str, ...]

    @property
    def bandwidth_hint(self) -> float:
        """Fraction of the referenced signals that can be dropped."""
        if not self.referenced:
            return 0.0
        return len(self.droppable) / len(self.referenced)


def _atom_signals(atom: Formula) -> Tuple[str, ...]:
    return tuple(atom.signals())


def reduce_observables(automaton: Automaton) -> Observability:
    """Minimal observable-signal set of a compiled automaton."""
    atoms = automaton.alphabet.atoms
    referenced = sorted(
        {name for atom in atoms for name in _atom_signals(atom)}
    )
    letters = automaton.alphabet.letters
    droppable: List[str] = []
    for signal in referenced:
        mask = 0
        for i, atom in enumerate(atoms):
            if signal in _atom_signals(atom):
                mask |= 1 << i
        keep = ~mask
        distinguishes = False
        for state in range(automaton.n_states):
            if automaton.is_sink(state):
                continue
            groups: Dict[int, int] = {}
            for pos, letter in enumerate(letters):
                successor = automaton.transitions[state][pos]
                key = letter & keep
                previous = groups.setdefault(key, successor)
                if previous != successor:
                    distinguishes = True
                    break
            if distinguishes:
                break
        if not distinguishes:
            droppable.append(signal)
    required = [name for name in referenced if name not in droppable]
    return Observability(
        referenced=tuple(referenced),
        required=tuple(required),
        droppable=tuple(droppable),
    )


# ----------------------------------------------------------------------
# Rule-level analysis and the report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Certificate:
    """A rule's monitorability certificate."""

    classification: str
    safety: bool
    co_safety: bool
    horizon_rows: Optional[int]


@dataclass
class RuleAutomaton:
    """Everything the automata pass derived for one rule."""

    rule_id: str
    name: str
    status: str  # "ok" | "unsupported" | "budget"
    reason: str
    monitor_horizon_rows: Optional[int]
    automaton: Optional[Automaton] = None
    certificate: Optional[Certificate] = None
    observability: Optional[Observability] = None
    satisfiable: str = UNKNOWN
    falsifiable: str = UNKNOWN

    def to_dict(self) -> Dict[str, object]:
        certificate = self.certificate
        observability = self.observability
        automaton = self.automaton
        return {
            "rule": self.rule_id,
            "name": self.name,
            "status": self.status,
            "reason": self.reason,
            "class": certificate.classification if certificate else None,
            "safety": certificate.safety if certificate else None,
            "co_safety": certificate.co_safety if certificate else None,
            "horizon_rows": (
                certificate.horizon_rows if certificate else None
            ),
            "monitor_horizon_rows": self.monitor_horizon_rows,
            "states": automaton.n_states if automaton else None,
            "letters": (
                len(automaton.alphabet.letters) if automaton else None
            ),
            "atoms": (
                list(automaton.alphabet.atom_texts()) if automaton else []
            ),
            "satisfiable": self.satisfiable,
            "falsifiable": self.falsifiable,
            "observability": (
                {
                    "referenced": list(observability.referenced),
                    "required": list(observability.required),
                    "droppable": list(observability.droppable),
                }
                if observability is not None
                else None
            ),
        }


def monitor_horizon_rows(formula: Formula, period: float) -> Optional[int]:
    """The rows of lookahead :class:`~repro.core.online.OnlineMonitor`
    would configure for this formula (its conservative
    ``future_reach``-based bound, always ≥ the exact certificate).
    ``None`` when the reach is unbounded — no finite configuration
    exists, matching a ``None`` certificate horizon."""
    from repro.core.evaluator import future_reach

    reach = future_reach(formula, period)
    if math.isinf(reach):
        return None
    return int(math.ceil(reach / period)) + 1


def compile_rule(
    rule,
    machines: Sequence[StateMachine] = (),
    env: Optional[Mapping[str, Interval]] = None,
    bool_signals: FrozenSet[str] = frozenset(),
    period: float = DEFAULT_PERIOD,
    max_states: int = DEFAULT_STATE_BUDGET,
    max_atoms: int = MAX_ALPHABET_ATOMS,
) -> RuleAutomaton:
    """Compile one rule's effective formula (gate included; intent
    filters and warm-up windows are runtime concerns outside the
    language and are not modelled)."""
    formula = rule.effective_formula()
    try:
        horizon = monitor_horizon_rows(formula, period)
    except EvaluationError:
        horizon = None
    name = getattr(rule, "name", "") or rule.rule_id
    try:
        automaton = compile_formula(
            formula,
            machines=machines,
            env=env,
            bool_signals=bool_signals,
            period=period,
            max_states=max_states,
            max_atoms=max_atoms,
        )
    except (AlphabetError, UnsupportedFormulaError, EvaluationError) as exc:
        return RuleAutomaton(
            rule_id=rule.rule_id,
            name=name,
            status="unsupported",
            reason=str(exc),
            monitor_horizon_rows=horizon,
        )
    except StateBudgetError as exc:
        return RuleAutomaton(
            rule_id=rule.rule_id,
            name=name,
            status="budget",
            reason=str(exc),
            monitor_horizon_rows=horizon,
        )
    classification, safety, co_safety = automaton.classify()
    certificate = Certificate(
        classification=classification,
        safety=safety,
        co_safety=co_safety,
        horizon_rows=automaton.horizon_rows(),
    )
    return RuleAutomaton(
        rule_id=rule.rule_id,
        name=name,
        status="ok",
        reason="",
        monitor_horizon_rows=horizon,
        automaton=automaton,
        certificate=certificate,
        observability=reduce_observables(automaton),
        satisfiable=automaton.satisfiable(),
        falsifiable=automaton.falsifiable(),
    )


@dataclass
class AutomataReport:
    """``repro automata`` — one target's compiled rule set."""

    target: str
    period: float
    rules: List[RuleAutomaton] = field(default_factory=list)

    def summary(self) -> Dict[str, int]:
        counts = {
            "rules": len(self.rules),
            BOUNDED: 0,
            SAFETY: 0,
            CO_SAFETY: 0,
            NEITHER: 0,
            "unsupported": 0,
        }
        for entry in self.rules:
            if entry.status != "ok" or entry.certificate is None:
                counts["unsupported"] += 1
            else:
                counts[entry.certificate.classification] += 1
        return counts

    @property
    def failed(self) -> bool:
        """Strict gate: any rule that no finite horizon can decide."""
        return any(
            entry.status == "ok"
            and entry.certificate is not None
            and entry.certificate.classification == NEITHER
            for entry in self.rules
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.target,
            "period": self.period,
            "rules": [entry.to_dict() for entry in self.rules],
            "summary": self.summary(),
        }

    def format_text(self) -> str:
        counts = self.summary()
        lines = [
            "automata %s: %d rule(s) — %d bounded, %d safety, "
            "%d co-safety, %d neither, %d unsupported"
            % (
                self.target,
                counts["rules"],
                counts[BOUNDED],
                counts[SAFETY],
                counts[CO_SAFETY],
                counts[NEITHER],
                counts["unsupported"],
            )
        ]
        for entry in self.rules:
            if entry.status != "ok" or entry.certificate is None:
                lines.append(
                    "  %s: %s (%s)" % (entry.rule_id, entry.status, entry.reason)
                )
                continue
            certificate = entry.certificate
            automaton = entry.automaton
            horizon = (
                "unbounded"
                if certificate.horizon_rows is None
                else "%d row(s)" % certificate.horizon_rows
            )
            lines.append(
                "  %s: %s, horizon %s (monitor configures %s), "
                "%d state(s), %d letter(s) over %d atom(s)"
                % (
                    entry.rule_id,
                    certificate.classification,
                    horizon,
                    "n/a"
                    if entry.monitor_horizon_rows is None
                    else "%d" % entry.monitor_horizon_rows,
                    automaton.n_states if automaton else 0,
                    len(automaton.alphabet.letters) if automaton else 0,
                    len(automaton.alphabet.atoms) if automaton else 0,
                )
            )
            observability = entry.observability
            if observability is not None and observability.droppable:
                lines.append(
                    "      droppable signal(s): %s"
                    % ", ".join(observability.droppable)
                )
        return "\n".join(lines)


def analyze_automata(
    rules: Sequence,
    machines: Sequence[StateMachine] = (),
    database=None,
    period: Optional[float] = None,
    target: str = "rule set",
    max_states: int = DEFAULT_STATE_BUDGET,
) -> AutomataReport:
    """Compile every rule against the bundled (or given) CAN database.

    Mirrors :func:`~repro.analysis.audit.audit_rules`: ``database=None``
    loads the FSRACC database for the DBC-seeded coherence filter.
    """
    if database is None:
        from repro.can.fsracc import fsracc_database

        database = fsracc_database()
    if period is None:
        period = DEFAULT_PERIOD
    env, bool_signals = dbc_environment(database)
    report = AutomataReport(target=target, period=period)
    for rule in rules:
        report.rules.append(
            compile_rule(
                rule,
                machines=machines,
                env=env,
                bool_signals=bool_signals,
                period=period,
                max_states=max_states,
            )
        )
    return report


def analyze_automata_specs(
    specs,
    database=None,
    period: Optional[float] = None,
    target: str = "spec set",
    max_states: int = DEFAULT_STATE_BUDGET,
) -> AutomataReport:
    """Analyze a loaded :class:`~repro.core.specfile.SpecSet`."""
    return analyze_automata(
        specs.rules,
        machines=specs.machines,
        database=database,
        period=period,
        target=target,
        max_states=max_states,
    )


# ----------------------------------------------------------------------
# DOT export
# ----------------------------------------------------------------------


def to_dot(automaton: Automaton, title: str = "automaton") -> str:
    """Graphviz rendering: states labelled by their residual term,
    edges grouped per successor and labelled with the atom truths that
    are constant across the group (``*`` when none are)."""
    atoms = automaton.alphabet.atoms
    lines = [
        "digraph %s {" % _dot_id(title),
        "  rankdir=LR;",
        '  node [shape=circle, fontsize=10];',
    ]
    for state in range(automaton.n_states):
        term, mstates = automaton.states[state]
        label = str(term)
        if mstates:
            label += " | " + ",".join(mstates)
        if len(label) > 60:
            label = label[:57] + "..."
        shape = "doublecircle" if state == automaton.accept else (
            "box" if state == automaton.reject else "circle"
        )
        lines.append(
            '  s%d [shape=%s, label="%s"];'
            % (state, shape, _dot_escape("S%d: %s" % (state, label)))
        )
    lines.append('  start [shape=point]; start -> s0;')
    for state in range(automaton.n_states):
        if automaton.is_sink(state):
            continue
        by_successor: Dict[int, List[int]] = {}
        for pos, successor in enumerate(automaton.transitions[state]):
            by_successor.setdefault(successor, []).append(pos)
        for successor, positions in sorted(by_successor.items()):
            masks = [automaton.alphabet.letters[pos] for pos in positions]
            fixed: List[str] = []
            for i, atom in enumerate(atoms):
                values = {bool((mask >> i) & 1) for mask in masks}
                if len(values) == 1:
                    prefix = "" if values.pop() else "!"
                    fixed.append("%s%s" % (prefix, atom))
            label = " & ".join(fixed) if fixed else "*"
            if len(label) > 40:
                label = label[:37] + "..."
            lines.append(
                '  s%d -> s%d [label="%s"];'
                % (state, successor, _dot_escape(label))
            )
    lines.append("}")
    return "\n".join(lines)


def _dot_id(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name) or "automaton"


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')
