"""Orchestration — lint rules, machines, spec sets, and ``.rules`` files.

The entry points mirror how specifications exist in the system:

* :func:`lint_rules` — in-memory :class:`~repro.core.monitor.Rule` and
  :class:`~repro.core.statemachine.StateMachine` objects (what strict
  :class:`~repro.core.monitor.Monitor` construction calls);
* :func:`lint_specs` — a loaded :class:`~repro.core.specfile.SpecSet`,
  attaching ``file:line`` origins recorded by the loader;
* :func:`lint_file` — a ``.rules`` path (what ``repro lint`` calls).

All of them return :class:`~repro.analysis.diagnostics.Diagnostic` lists
sorted most-severe-first.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.checks import (
    RULE_CHECKS,
    LintContext,
    check_machine,
    check_spec_set,
)
from repro.analysis.diagnostics import Diagnostic, sort_diagnostics
from repro.analysis.intervals import Interval
from repro.core.monitor import DEFAULT_PERIOD
from repro.core.statemachine import StateMachine


def database_env(database) -> Dict[str, Interval]:
    """Physical value ranges per signal, derived from the CAN database.

    Booleans are ``[0, 1]``; floats and enums use their DBC
    ``minimum``/``maximum``, with missing sides left unbounded.
    """
    env: Dict[str, Interval] = {}
    for message in database.messages():
        for signal in message.signals:
            if signal.kind.value == "bool":
                env[signal.name] = Interval(0.0, 1.0)
                continue
            lo = signal.minimum if signal.minimum is not None else -float("inf")
            hi = signal.maximum if signal.maximum is not None else float("inf")
            env[signal.name] = Interval(float(lo), float(hi))
    return env


def build_context(
    database=None,
    machines: Sequence[StateMachine] = (),
    period: float = DEFAULT_PERIOD,
) -> LintContext:
    """A :class:`LintContext` over a database and machine set."""
    return LintContext(
        database=database,
        machines={machine.name: machine for machine in machines},
        period=period,
        env=database_env(database) if database is not None else {},
    )


def lint_rules(
    rules: Iterable,
    machines: Sequence[StateMachine] = (),
    database=None,
    period: float = DEFAULT_PERIOD,
) -> List[Diagnostic]:
    """Run every check over in-memory rules and machines."""
    rules = list(rules)
    machines = list(machines)
    ctx = build_context(database=database, machines=machines, period=period)
    diagnostics: List[Diagnostic] = []
    for rule in rules:
        subject = "rule %s" % rule.rule_id
        for check in RULE_CHECKS:
            diagnostics.extend(check(rule, subject, ctx))
    for machine in machines:
        diagnostics.extend(check_machine(machine, ctx))
    diagnostics.extend(check_spec_set(rules, machines, ctx))
    return sort_diagnostics(diagnostics)


def lint_specs(
    specs,
    database=None,
    period: float = DEFAULT_PERIOD,
) -> List[Diagnostic]:
    """Lint a loaded :class:`~repro.core.specfile.SpecSet`.

    When the spec set carries origins (``.rules`` loads record the file
    and section-header line of every rule and machine), diagnostics are
    stamped with them so they print ``file:line``.
    """
    diagnostics = lint_rules(
        specs.rules,
        machines=specs.machines,
        database=database,
        period=period,
    )
    origins = getattr(specs, "origins", None)
    if not origins:
        return diagnostics
    located: List[Diagnostic] = []
    for diagnostic in diagnostics:
        origin = origins.get(diagnostic.subject.replace(" ", ":", 1))
        if origin is not None:
            diagnostic = diagnostic.with_origin(origin.source, origin.line)
        located.append(diagnostic)
    return located


def lint_file(
    path: str,
    database=None,
    period: float = DEFAULT_PERIOD,
) -> List[Diagnostic]:
    """Load and lint one ``.rules`` file."""
    from repro.core.specfile import load_specs

    return lint_specs(load_specs(path), database=database, period=period)
