"""The diagnostic-code catalog — every check the analyzer can report.

One :class:`CatalogEntry` per stable code.  Checks build diagnostics
through :func:`make_diagnostic`, which looks the severity up here, so a
code's severity cannot drift between the implementation, the docs, and
the CLI.  The DESIGN.md catalog table is kept in sync by a test that
asserts every code below appears there.

Code blocks:

* ``SL1xx`` — name resolution and typing (signals, machines, states);
* ``SL2xx`` — temporal bounds;
* ``SL3xx`` — constant folding / interval analysis (static vacuity);
* ``SL4xx`` — multi-rate sampling hazards (§V-C1);
* ``SL5xx`` — warm-up hazards (§V-C2);
* ``SL6xx`` — state-machine structure;
* ``SL7xx`` — spec-set level (duplicates, shadowing).

The cross-artifact auditor (``repro audit``, :mod:`repro.analysis.audit`)
owns the ``AU`` range:

* ``AU1xx`` — rule-set verification (contradiction, subsumption,
  set-level vacuity, duplicate coverage);
* ``AU2xx`` — monitoring coverage (unreferenced signals, states, modes);
* ``AU3xx`` — injection-plan static checks (degenerate values, oversized
  flip masks, unknown targets, statically dead injections);
* ``AU4xx`` — cross-artifact consistency (checker registry, sampling
  rates, unexercised rules);
* ``AU5xx`` — quantitative margin findings from the static robustness
  prover (:mod:`repro.analysis.margins`): provably unfalsifiable rules,
  statically doomed campaign cells, tight-margin hotspots;
* ``AU6xx`` — monitorability certificates from the symbolic automata
  pass (:mod:`repro.analysis.automata`): rules no finite horizon can
  decide, over-provisioned online buffers, uncertifiable rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class CatalogEntry:
    """Reference data for one diagnostic code."""

    code: str
    severity: Severity
    title: str
    meaning: str
    example: str


def _entry(
    code: str, severity: Severity, title: str, meaning: str, example: str
) -> CatalogEntry:
    return CatalogEntry(code, severity, title, meaning, example)


#: Every diagnostic code the analyzer can emit, keyed by code.
CATALOG: Dict[str, CatalogEntry] = {
    entry.code: entry
    for entry in (
        _entry(
            "SL101",
            Severity.ERROR,
            "undefined signal",
            "A formula, gate, warm-up trigger, filter expression, or "
            "machine guard references a signal the CAN database does not "
            "define; the monitor would raise at evaluation time, after "
            "the campaign already ran.",
            "formula = Velocty > 10 (misspelling Velocity)",
        ),
        _entry(
            "SL102",
            Severity.ERROR,
            "unknown state machine",
            "in_state() names a machine the specification does not "
            "define.",
            "in_state(cruise, engaged) with only [machine acc] defined",
        ),
        _entry(
            "SL103",
            Severity.ERROR,
            "unknown machine state",
            "in_state() names a state its machine does not declare.",
            "in_state(acc, enganged) (misspelling engaged)",
        ),
        _entry(
            "SL110",
            Severity.WARNING,
            "numeric signal as boolean atom",
            "A float or enum signal is used as a bare boolean atom; it "
            "reads as 'nonzero', which is rarely the intended predicate "
            "for a continuous quantity.",
            "TargetRange -> BrakeRequested (meant TargetRange > 0)",
        ),
        _entry(
            "SL111",
            Severity.WARNING,
            "boolean signal in arithmetic",
            "A boolean signal is used in arithmetic, ordered with "
            "</<=/>/>=, or compared against a constant outside {0, 1}; "
            "boolean atoms or ==/!= 0/1 comparisons are what the "
            "three-valued semantics expect.",
            "BrakeRequested > 2, or Velocity + ACCEnabled",
        ),
        _entry(
            "SL201",
            Severity.ERROR,
            "malformed temporal bound",
            "A temporal operator's [lo, hi] bound is inverted, negative, "
            "or not finite; the window selects no meaningful rows.  (The "
            "parser rejects these in text; the check also covers "
            "programmatically built ASTs.)",
            "always[5, 1] x > 0",
        ),
        _entry(
            "SL202",
            Severity.WARNING,
            "zero-width temporal bound",
            "A temporal operator's bound has lo == hi, so the window is "
            "a single row — always[t, t] and eventually[t, t] coincide, "
            "and [0, 0] makes the operator a no-op.",
            "eventually[0, 0] x > 0",
        ),
        _entry(
            "SL301",
            Severity.WARNING,
            "comparison always true",
            "Interval analysis against the CAN database's physical "
            "ranges shows a comparison holds for every in-range value; "
            "it contributes nothing (only out-of-range injected values "
            "could falsify it).",
            "Velocity < 500 with Velocity in [-10, 120]",
        ),
        _entry(
            "SL302",
            Severity.WARNING,
            "comparison always false",
            "Interval analysis shows a comparison can never hold for "
            "in-range values.",
            "SelHeadway > 5 with SelHeadway in [1, 3]",
        ),
        _entry(
            "SL303",
            Severity.ERROR,
            "unsatisfiable gate",
            "A rule's gate can never be true for in-range values: the "
            "rule is statically vacuous and would silently pass every "
            "campaign — the costliest spec bug the paper's workflow can "
            "hit.",
            "gate = ACCEnabled and Velocity > 200",
        ),
        _entry(
            "SL304",
            Severity.WARNING,
            "vacuous implication",
            "The antecedent of an implication can never hold for "
            "in-range values, so the formula is vacuously satisfied "
            "everywhere.",
            "formula = Velocity > 200 -> BrakeRequested",
        ),
        _entry(
            "SL305",
            Severity.INFO,
            "gate always true",
            "A rule's gate holds for every in-range value — it gates "
            "nothing and can be dropped.",
            "gate = Velocity < 500",
        ),
        _entry(
            "SL401",
            Severity.WARNING,
            "window narrower than broadcast period",
            "A temporal bound spans less time than the broadcast period "
            "of a signal inside it: the window can close before a single "
            "fresh sample arrives, the §V-C1 multi-rate trap.",
            "eventually[0, 50ms] rising(RequestedTorque) with an 80 ms "
            "broadcast period",
        ),
        _entry(
            "SL402",
            Severity.WARNING,
            "naive difference on a slow signal",
            "delta_naive() differences consecutive held rows of a signal "
            "broadcast slower than the monitor period; between updates "
            "the difference is always zero and at updates it collapses "
            "several cycles of change into one row (§V-C1).",
            "delta_naive(RequestedTorque) at a 20 ms monitor period",
        ),
        _entry(
            "SL403",
            Severity.INFO,
            "slow-signal difference without fresh() guard",
            "delta()/prev() on a signal broadcast slower than the "
            "monitor period, with no fresh() guard in the rule: values "
            "are held between updates, so the difference repeats on "
            "every held row and a violation can be counted for several "
            "rows per actual sample.",
            "not rising(RequestedTorque) without fresh(RequestedTorque)",
        ),
        _entry(
            "SL501",
            Severity.WARNING,
            "history before any settle/warmup",
            "The rule differences or looks back at a signal (prev, "
            "delta, rate) but declares neither an initial settle window "
            "nor a warm-up trigger, so the check runs on power-on "
            "transients and discrete activation jumps (§V-C2).",
            "formula = rate(TargetRange) < 10 with no settle/warmup key",
        ),
        _entry(
            "SL601",
            Severity.WARNING,
            "unreachable state",
            "A declared machine state cannot be reached from the initial "
            "state by any chain of transitions; in_state() atoms naming "
            "it are statically false.",
            "states = idle, engaged, lost with no transition into lost",
        ),
        _entry(
            "SL602",
            Severity.WARNING,
            "duplicate transition guard",
            "Two transitions out of the same state carry identical "
            "guards; transitions are tried in declaration order, so the "
            "second can never fire.",
            "two 'idle -> x : ACCEnabled' transitions",
        ),
        _entry(
            "SL603",
            Severity.WARNING,
            "statically constant transition guard",
            "A transition guard is statically always true (shadowing "
            "every later transition out of that state) or never true "
            "(the transition is dead).",
            "transition = idle -> engaged : Velocity < 500",
        ),
        _entry(
            "SL701",
            Severity.ERROR,
            "duplicate rule id / machine name",
            "Two rules share an id, or two machines share a name, in one "
            "spec set; the monitor would reject the set at construction.",
            "two [rule rule5] sections merged from different files",
        ),
        _entry(
            "SL702",
            Severity.WARNING,
            "duplicate rule body",
            "Two rules evaluate the same effective formula (gate folded "
            "in): one shadows the other in reports and doubles its cost.",
            "a gated rule repeated with the same gate and formula",
        ),
        # ------------------------------------------------------------------
        # AU codes — the cross-artifact auditor (repro audit).
        # ------------------------------------------------------------------
        _entry(
            "AU101",
            Severity.ERROR,
            "contradictory rules",
            "Two rules sharing a gate have formulas that statically "
            "conflict under the DBC ranges: any in-range row satisfying "
            "one violates the other, so every gated row of every "
            "campaign reports at least one violation regardless of the "
            "system's behaviour.",
            "Velocity >= 0 in one rule, Velocity < 0 in another",
        ),
        _entry(
            "AU102",
            Severity.WARNING,
            "rule subsumed by another",
            "One rule's formula statically implies another's (same "
            "gate): every trace violating the weaker rule also violates "
            "the stronger one, so the weaker rule adds no detection "
            "power to the set.",
            "Velocity < 100 alongside Velocity < 50",
        ),
        _entry(
            "AU103",
            Severity.WARNING,
            "statically unfalsifiable rule",
            "A rule's effective formula (gate folded in) holds for every "
            "in-range value: only out-of-range injections could ever "
            "falsify it, so as specified intent the rule is set-level "
            "dead weight.",
            "formula = Velocity < 500 with Velocity in [-10, 120]",
        ),
        _entry(
            "AU104",
            Severity.INFO,
            "overlapping signal coverage",
            "Two or more rules monitor the identical signal set; not "
            "wrong, but worth checking they genuinely test different "
            "properties of the same signals.",
            "rule3 and rule4 both over {Velocity, ACCSetSpeed, "
            "RequestedTorque, ACCEnabled}",
        ),
        _entry(
            "AU201",
            Severity.WARNING,
            "unmonitored signal",
            "A DBC signal is referenced by no rule and no machine guard: "
            "every Table I cell targeting it is blind unless the fault "
            "propagates into a monitored signal.",
            "AccelPedPos with no rule mentioning it",
        ),
        _entry(
            "AU202",
            Severity.WARNING,
            "unmonitored machine state",
            "A declared state-machine state is referenced by no rule's "
            "in_state() atom: the machine computes it, but no property "
            "binds while the system is in it.",
            "state 'fault' declared but never used by a rule",
        ),
        _entry(
            "AU203",
            Severity.INFO,
            "ACC operating mode not modelled",
            "An ACC operating mode (off / standby / engaged / fault) "
            "has no corresponding state in any spec state machine, so "
            "the rule set cannot express mode-specific properties for "
            "it (modal blindness, paper §V-B).",
            "no [machine] section at all, or one missing a 'fault' state",
        ),
        _entry(
            "AU301",
            Severity.INFO,
            "exceptional values degenerate",
            "A Ballista test cannot deliver its exceptional values: "
            "bool/enum targets fall back to random valid values (the "
            "paper's own concession to HIL type checking), and float "
            "targets lose the dictionary entries the profile's DBC "
            "range check rejects as out-of-range no-ops.",
            "Ballista SelHeadway (enum), or Ballista Velocity losing "
            "the 2^32 boundary values to [-10, 120]",
        ),
        _entry(
            "AU302",
            Severity.WARNING,
            "flip mask wider than field",
            "A bit-flip test requests more distinct flip bits than the "
            "target signal's field holds: the scheduled sizes are "
            "clamped or skipped, so the row label overstates the faults "
            "actually injected.",
            "mBitflip4 on the 1-bit VehicleAhead",
        ),
        _entry(
            "AU303",
            Severity.ERROR,
            "unknown injection target",
            "An injection test targets a signal the CAN database does "
            "not define; the harness would raise mid-campaign, after "
            "earlier rows already ran.",
            "Random Velocty (misspelling Velocity)",
        ),
        _entry(
            "AU304",
            Severity.WARNING,
            "statically dead injection",
            "No signal influenced by a test's injections (through the "
            "controller/plant dependency graph) is referenced by one or "
            "more rules: those (injection x rule) cells cannot differ "
            "from an uninjected run.",
            "injecting ThrotPos against a rule set that never reads it",
        ),
        _entry(
            "AU401",
            Severity.ERROR,
            "unknown checker profile",
            "The campaign plan names an injection type-checker profile "
            "the registry does not define; the campaign would fail at "
            "construction.",
            "profile = dspace with only hil/vehicle registered",
        ),
        _entry(
            "AU402",
            Severity.WARNING,
            "monitor undersamples signal",
            "The campaign's monitor period is longer than the broadcast "
            "period of a rule-referenced signal: updates arrive faster "
            "than the monitor samples, so transient violations can fall "
            "between rows (the inverse of the §V-C1 trap).",
            "a 100 ms monitor period over 20 ms broadcast messages",
        ),
        _entry(
            "AU403",
            Severity.WARNING,
            "rule unexercised by campaign plan",
            "No test in the campaign plan injects any signal that "
            "reaches the rule in the dependency graph: the whole "
            "campaign cannot falsify it, only nominal behaviour can.",
            "a rule over AccelPedPos in a plan that never injects it",
        ),
        _entry(
            "AU501",
            Severity.WARNING,
            "provable positive robustness margin",
            "The static margin prover shows the rule's robustness lower "
            "bound stays strictly positive (by more than the tightness "
            "epsilon) for every in-range trace: the rule is quantitatively "
            "unfalsifiable, a stronger form of AU103 that also reports "
            "*how far* from violation the spec sits.",
            "formula = Velocity < 500 proves margin >= 380",
        ),
        _entry(
            "AU502",
            Severity.WARNING,
            "statically doomed campaign cell",
            "Under a test's injection-widened signal ranges, a rule's "
            "static robustness upper bound is strictly negative: every "
            "monitored row of that (injection x rule) cell is provably a "
            "raw violation before filtering, so the cell measures the "
            "spec, not the system.",
            "ACCSetSpeed < -5 with ACCSetSpeed in [0, 60] and no "
            "injection reaching it",
        ),
        _entry(
            "AU503",
            Severity.INFO,
            "tight positive margin",
            "The static lower bound is positive but within the tightness "
            "epsilon: the rule is unfalsifiable only by a sliver of "
            "margin, so modelling slack (DBC ranges, held samples, "
            "float rounding) may be hiding a falsifiable rule.",
            "formula = Velocity < 120.5 with Velocity in [-10, 120] "
            "(margin 0.5)",
        ),
        _entry(
            "AU601",
            Severity.ERROR,
            "rule has no finite decision horizon",
            "The compiled automaton contains a cycle that never resolves "
            "to a verdict, so no bounded online horizon — including the "
            "one the monitor derives from future_reach — can decide the "
            "rule on every trace.  The online monitor will emit UNKNOWN "
            "forever on some inputs.",
            "formula = always (BrakeRequested -> eventually "
            "RequestedDecel < 0) with an unbounded eventually",
        ),
        _entry(
            "AU602",
            Severity.INFO,
            "monitor horizon over-provisioned",
            "The exact decision horizon from the symbolic automaton is "
            "strictly smaller than the conservative horizon the online "
            "monitor configures from future_reach, so the monitor buffers "
            "more rows (and delays verdicts longer) than the rule "
            "requires.",
            "formula = always[0, 0.1] (p -> q) decided in 1 row while "
            "the monitor buffers 6",
        ),
        _entry(
            "AU603",
            Severity.WARNING,
            "monitorability not certified",
            "The symbolic automata pass could not compile the rule "
            "(unsupported operator, predicate-alphabet budget, or state "
            "budget), so no monitorability certificate exists and the "
            "bounded-horizon adequacy of the online monitor is only "
            "assumed, not proved.",
            "formula mixing once/historically with 14 distinct "
            "comparison atoms",
        ),
    )
}


def make_diagnostic(
    code: str,
    subject: str,
    message: str,
    suggestion: str = "",
    file: Optional[str] = None,
    line: Optional[int] = None,
    column: Optional[int] = None,
) -> Diagnostic:
    """Build a diagnostic for a cataloged code (severity comes from the
    catalog — checks cannot disagree with the reference table)."""
    entry = CATALOG[code]
    return Diagnostic(
        code=code,
        severity=entry.severity,
        subject=subject,
        message=message,
        suggestion=suggestion,
        file=file,
        line=line,
        column=column,
    )
