"""Predicate alphabets for the symbolic monitor automata.

The automata compiler (:mod:`repro.analysis.automata`) views a trace as
a word whose letters are *truth assignments to atomic predicates* —
comparisons, boolean signal reads and freshness tests.  This module
extracts that atom set from a formula (expanding ``in_state`` through
its machine's transition guards) and enumerates the **coherent**
assignments: the subsets of atoms that some in-range, non-NaN row could
satisfy simultaneously.

Coherence is decided with the same interval arithmetic the margin
prover uses, seeded from the DBC signal ranges, but with *strict*
bounds tracked separately so that ``x < 1`` and ``x > 1`` are
recognized as disjoint (the closed :class:`~repro.analysis.intervals.
Interval` cannot express that).  Comparisons are normalized to
``expression op constant`` form, grouped by structural left-hand side,
and each group's bound set is intersected; compound expressions are
then re-checked against the refined per-signal ranges.

Soundness contract: the letter set **over-approximates** the feasible
assignments.  Every in-range, non-NaN row induces a letter that
survives the filter (its actual values witness every interval the
filter intersects), so dropping a letter never removes a real
behaviour.  The converse does not hold — a surviving letter may still
be infeasible — which can only make the automata prover *less*
complete, never unsound.  Out-of-range or NaN data voids the
guarantee, exactly as it does for the syntactic audit prover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover — import cycle is runtime-only
    from repro.can.database import CanDatabase

from repro.analysis.intervals import (
    TOP,
    Interval,
    abs_,
    add,
    div,
    intersect,
    max_,
    min_,
    mul,
    neg,
    point,
    sub,
)
from repro.core.ast import (
    And,
    Binary,
    BoolConst,
    Comparison,
    Constant,
    Expr,
    Formula,
    Fresh,
    Implies,
    InState,
    Not,
    Or,
    SignalPredicate,
    SignalRef,
    TraceFunc,
    Unary,
)
from repro.core.statemachine import StateMachine

#: Hard cap on distinct atoms per alphabet: letters are subsets of the
#: atom set, so ``k`` atoms mean up to ``2**k`` letters — beyond ~12 the
#: product construction stops being interactive.
MAX_ALPHABET_ATOMS = 12

_NEGATED_OP = {
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "==": "!=",
    "!=": "==",
}

#: ``c op E``  ⇔  ``E mirror(op) c``.
_MIRRORED_OP = {
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
    "==": "==",
    "!=": "!=",
}


class AlphabetError(Exception):
    """The formula set cannot be given a tractable predicate alphabet."""


@dataclass(frozen=True)
class Alphabet:
    """An ordered atom set plus its coherent letters.

    ``atoms[i]``'s truth in letter ``mask`` is bit ``i`` of ``mask``.
    ``letters`` lists every coherent bitmask in ascending order.
    """

    atoms: Tuple[Formula, ...]
    letters: Tuple[int, ...]

    def index(self, atom: Formula) -> int:
        """Bit position of ``atom`` (structural equality)."""
        return self.atoms.index(atom)

    def truth(self, letter: int, index: int) -> bool:
        """Truth of atom ``index`` under ``letter``."""
        return bool((letter >> index) & 1)

    def atom_texts(self) -> Tuple[str, ...]:
        """Source-like rendering of every atom, in bit order."""
        return tuple(str(atom) for atom in self.atoms)


# ----------------------------------------------------------------------
# Atom collection
# ----------------------------------------------------------------------


def collect_atoms(
    formulas: Iterable[Formula],
    machines: Mapping[str, StateMachine],
) -> Tuple[Tuple[Formula, ...], Tuple[str, ...]]:
    """Atoms and referenced machine names across ``formulas``.

    ``in_state`` references pull the guard atoms of *every* transition
    of the named machine into the alphabet (the automaton must track
    the machine, so the guards become part of the letter).  Unknown
    machines raise :class:`AlphabetError`.
    """
    atoms: List[Formula] = []
    seen: Set[Formula] = set()
    machine_names: List[str] = []

    def walk(node: Formula) -> None:
        if isinstance(node, (Comparison, SignalPredicate, Fresh)):
            if node not in seen:
                seen.add(node)
                atoms.append(node)
            return
        if isinstance(node, InState):
            if node.machine not in machines:
                raise AlphabetError(
                    "in_state references unknown machine %r" % node.machine
                )
            if node.machine not in machine_names:
                machine_names.append(node.machine)
                for transition in machines[node.machine].transitions:
                    walk(transition.guard)
            return
        for child in node.children():
            if isinstance(child, Formula):
                walk(child)

    for formula in formulas:
        walk(formula)
    return tuple(atoms), tuple(machine_names)


# ----------------------------------------------------------------------
# Strict-bound constraint accumulation
# ----------------------------------------------------------------------


class _Constraint:
    """An intersected bound set ``lo (<|<=) E (<|<=) hi`` plus excluded
    points, for one structural expression group."""

    __slots__ = ("lo", "lo_strict", "hi", "hi_strict", "excluded")

    def __init__(self) -> None:
        self.lo = -math.inf
        self.lo_strict = False
        self.hi = math.inf
        self.hi_strict = False
        self.excluded: Set[float] = set()

    def add(self, op: str, bound: float) -> None:
        if op == "<":
            if bound < self.hi or (bound == self.hi and not self.hi_strict):
                self.hi, self.hi_strict = bound, True
        elif op == "<=":
            if bound < self.hi:
                self.hi, self.hi_strict = bound, False
        elif op == ">":
            if bound > self.lo or (bound == self.lo and not self.lo_strict):
                self.lo, self.lo_strict = bound, True
        elif op == ">=":
            if bound > self.lo:
                self.lo, self.lo_strict = bound, False
        elif op == "==":
            self.add(">=", bound)
            self.add("<=", bound)
        else:  # "!="
            self.excluded.add(bound)

    @property
    def empty(self) -> bool:
        if self.lo > self.hi:
            return True
        if self.lo == self.hi:
            if self.lo_strict or self.hi_strict:
                return True
            if self.lo in self.excluded:
                return True
        return False

    def hull(self) -> Optional[Interval]:
        """The closed over-approximation, or ``None`` when empty."""
        if self.empty:
            return None
        return Interval(self.lo, self.hi)

    def restrict(self, interval: Interval) -> None:
        """Also require membership in a closed ``interval``."""
        self.add(">=", interval.lo)
        self.add("<=", interval.hi)


def _normalized(
    comparison: Comparison, value: bool
) -> Tuple[Expr, str, float]:
    """``(expression, op, constant)`` form of a comparison atom's truth.

    Constant sides move to the right (mirroring the operator); two
    non-constant sides become ``left - right op 0``.
    """
    op = comparison.op if value else _NEGATED_OP[comparison.op]
    if isinstance(comparison.right, Constant):
        return (comparison.left, op, float(comparison.right.value))
    if isinstance(comparison.left, Constant):
        return (
            comparison.right,
            _MIRRORED_OP[op],
            float(comparison.left.value),
        )
    return (Binary("-", comparison.left, comparison.right), op, 0.0)


def _refined_expr_interval(
    expr: Expr,
    env: Mapping[str, Interval],
    hulls: Mapping[Expr, Interval],
) -> Optional[Interval]:
    """Interval of ``expr`` under ``env``, narrowed by the group hulls.

    Every sub-expression that is itself a constraint-group key gets its
    computed interval intersected with that group's hull — ``None``
    (disjoint) means the letter requires an impossible value.
    """
    if isinstance(expr, Constant):
        interval: Optional[Interval] = point(float(expr.value))
    elif isinstance(expr, SignalRef):
        interval = env.get(expr.name, TOP)
    elif isinstance(expr, Unary):
        operand = _refined_expr_interval(expr.operand, env, hulls)
        if operand is None:
            return None
        interval = neg(operand) if expr.op == "-" else abs_(operand)
    elif isinstance(expr, Binary):
        left = _refined_expr_interval(expr.left, env, hulls)
        right = _refined_expr_interval(expr.right, env, hulls)
        if left is None or right is None:
            return None
        combine = {
            "+": add,
            "-": sub,
            "*": mul,
            "/": div,
            "min": min_,
            "max": max_,
        }[expr.op]
        interval = combine(left, right)
    elif isinstance(expr, TraceFunc):
        if expr.kind == "prev":
            interval = env.get(expr.signal, TOP)
        elif expr.kind == "age":
            interval = Interval(0.0, math.inf)
        else:  # delta / delta_naive / rate: unbounded between two reads
            interval = TOP
    else:
        interval = TOP
    hull = hulls.get(expr)
    if hull is not None:
        interval = intersect(interval, hull)
    return interval


def _letter_coherent(
    letter: int,
    atoms: Sequence[Formula],
    env: Mapping[str, Interval],
    bool_signals: FrozenSet[str],
) -> bool:
    """Whether some in-range row could realize this truth assignment."""
    groups: Dict[Expr, _Constraint] = {}
    for index, atom in enumerate(atoms):
        value = bool((letter >> index) & 1)
        if isinstance(atom, Comparison):
            key, op, bound = _normalized(atom, value)
        elif isinstance(atom, SignalPredicate):
            key = SignalRef(atom.name)
            if atom.name in bool_signals:
                op, bound = "==", (1.0 if value else 0.0)
            else:
                op, bound = ("!=" if value else "=="), 0.0
        else:  # Fresh: timing, not values — always coherent either way
            continue
        constraint = groups.setdefault(key, _Constraint())
        constraint.add(op, bound)
        if constraint.empty:
            return False

    # Refine the per-signal environment from bare-signal groups, then
    # check every group hull against interval arithmetic over the
    # refined ranges (catching e.g. ``abs(E) < 0.05`` vs ``E > 0.75``).
    refined: Dict[str, Interval] = dict(env)
    for key, constraint in groups.items():
        if isinstance(key, SignalRef):
            constraint.restrict(refined.get(key.name, TOP))
            hull = constraint.hull()
            if hull is None:
                return False
            refined[key.name] = hull
    hulls: Dict[Expr, Interval] = {}
    for key, constraint in groups.items():
        hull = constraint.hull()
        if hull is None:
            return False
        hulls[key] = hull
    for key in groups:
        if _refined_expr_interval(key, refined, hulls) is None:
            return False
    return True


# ----------------------------------------------------------------------
# Alphabet construction
# ----------------------------------------------------------------------


def build_alphabet(
    formulas: Iterable[Formula],
    machines: Mapping[str, StateMachine],
    env: Optional[Mapping[str, Interval]] = None,
    bool_signals: FrozenSet[str] = frozenset(),
    max_atoms: int = MAX_ALPHABET_ATOMS,
) -> Alphabet:
    """The coherent predicate alphabet of ``formulas``.

    ``env`` maps signal names to their DBC physical ranges (see
    :func:`~repro.analysis.analyzer.database_env`) and seeds the
    coherence filter; ``bool_signals`` names the signals whose only
    in-range values are 0 and 1.  Raises :class:`AlphabetError` when
    the atom count exceeds ``max_atoms``.
    """
    atoms, machine_names = collect_atoms(formulas, machines)
    if len(atoms) > max_atoms:
        raise AlphabetError(
            "alphabet needs %d atoms, budget is %d" % (len(atoms), max_atoms)
        )
    ranges: Mapping[str, Interval] = env if env is not None else {}
    letters = tuple(
        mask
        for mask in range(1 << len(atoms))
        if _letter_coherent(mask, atoms, ranges, bool_signals)
    )
    if not letters:
        # Only reachable with an inconsistent environment; a real DBC
        # always admits at least one row.
        raise AlphabetError("no coherent letter exists under the DBC ranges")
    return Alphabet(atoms=atoms, letters=letters)


def dbc_environment(
    database: "CanDatabase",
) -> Tuple[Dict[str, Interval], FrozenSet[str]]:
    """``(signal ranges, bool-kind signal names)`` for a CAN database."""
    from repro.analysis.analyzer import database_env

    bools = set()
    for message in database.messages():
        for signal in message.signals:
            if signal.kind.value == "bool":
                bools.add(signal.name)
    return database_env(database), frozenset(bools)


def evaluate_proposition(
    formula: Formula,
    truth: Mapping[Formula, bool],
) -> bool:
    """Evaluate a propositional (guard) formula under an atom assignment.

    ``truth`` maps atomic formulas (structural equality) to booleans.
    Raises ``KeyError`` for atoms missing from the assignment and
    :class:`AlphabetError` for temporal operators (machine guards are
    validated propositional at construction).
    """
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, (Comparison, SignalPredicate, Fresh)):
        return truth[formula]
    if isinstance(formula, Not):
        return not evaluate_proposition(formula.operand, truth)
    if isinstance(formula, And):
        return evaluate_proposition(
            formula.left, truth
        ) and evaluate_proposition(formula.right, truth)
    if isinstance(formula, Or):
        return evaluate_proposition(
            formula.left, truth
        ) or evaluate_proposition(formula.right, truth)
    if isinstance(formula, Implies):
        return not evaluate_proposition(
            formula.left, truth
        ) or evaluate_proposition(formula.right, truth)
    raise AlphabetError(
        "formula %s is not propositional" % type(formula).__name__
    )
