"""Zero-dependency metrics: counters, gauges, streaming histograms, spans.

The observability layer the campaign and monitor hot paths report into.
Three design constraints shape everything here:

* **off-hot-path cheap** — a disabled registry hands out shared no-op
  instruments, so instrumented code pays one attribute check when
  metrics are off;
* **mergeable** — histograms use fixed log-scale buckets, so merging
  two snapshots is bucket-count addition: associative, commutative, and
  order-independent across worker processes;
* **deterministic content** — instruments never touch RNG state or
  control flow, so enabling metrics cannot perturb campaign letters.

Quantiles (p50/p95) are read from the bucket boundaries, which makes
them merge-stable: merging snapshots A and B then asking for p95 gives
the same answer regardless of merge order.
"""

from __future__ import annotations

import functools
import math
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: Snapshot format identifier; bump when the JSON layout changes.
SCHEMA_VERSION = "repro.obs/v1"

#: Histogram bucket resolution: boundaries at powers of this base
#: (10 buckets per decade — ~26% relative quantile error, plenty for
#: "which rule dominates" questions while keeping snapshots small).
_BUCKET_BASE = 10.0 ** 0.1
_LOG_BASE = math.log(_BUCKET_BASE)

#: Bucket index reserved for zero and negative observations.
_UNDERFLOW = -(10 ** 6)


def _bucket_index(value: float) -> int:
    """The log-scale bucket holding ``value``.

    Bucket ``i`` covers ``(base**i, base**(i+1)]``; zero and negative
    values share a single underflow bucket so durations of 0.0 (clock
    granularity) stay countable.
    """
    if value <= 0.0 or math.isnan(value):
        return _UNDERFLOW
    if math.isinf(value):
        return 10 ** 6
    # ceil(log_base(v)) - 1 puts exact boundaries in the lower bucket.
    return int(math.ceil(math.log(value) / _LOG_BASE - 1e-12)) - 1


def _bucket_upper(index: int) -> float:
    """Upper boundary of bucket ``index`` (0.0 for the underflow bucket)."""
    if index == _UNDERFLOW:
        return 0.0
    return _BUCKET_BASE ** (index + 1)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount


class Gauge:
    """A last-value-wins measurement (e.g. buffer size right now)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)
        self.updates += 1


class Histogram:
    """A streaming distribution with mergeable log-scale buckets."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1), read from bucket boundaries.

        Returns the upper boundary of the bucket containing the q-th
        observation, clamped to the exact observed maximum — so the
        answer is identical however the histogram was merged together.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % q)
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return min(_bucket_upper(index), self.max)
        return self.max

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile estimate."""
        return self.percentile(0.95)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram.

        Pure bucket addition — associative and commutative, so
        per-worker histograms can be merged in any completion order.
        """
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count


class Span:
    """A wall-time span: context manager *and* decorator.

    Entering starts the clock; exiting records the elapsed seconds into
    the registry histogram ``<name>.seconds``.  Spans nest: the registry
    keeps a stack, and :attr:`path` exposes the full ``outer/inner``
    location of the innermost active span (recorded under
    ``<name>.seconds`` regardless of nesting, so merged reports keep
    stable keys).
    """

    __slots__ = ("registry", "name", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.registry = registry
        self.name = name
        self._started = 0.0

    def __enter__(self) -> "Span":
        self.registry._span_stack.append(self.name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._started
        stack = self.registry._span_stack
        if stack and stack[-1] == self.name:
            stack.pop()
        self.registry.histogram(self.name + ".seconds").observe(elapsed)

    @property
    def path(self) -> str:
        """``outer/inner`` path of the active span stack."""
        return "/".join(self.registry._span_stack)

    def __call__(self, func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args: object, **kwargs: object) -> object:
            with self.registry.span(self.name):
                return func(*args, **kwargs)

        return wrapper


class _NullInstrument:
    """Shared no-op counter/gauge/histogram/span for disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def __call__(self, func: Callable) -> Callable:
        return func


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments plus snapshot/merge/summary plumbing.

    Instruments are created on first use and live for the registry's
    lifetime; asking for the same name twice returns the same object.
    A registry constructed with ``enabled=False`` hands out one shared
    no-op instrument, making instrumented code effectively free.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._span_stack: List[str] = []

    # -- instruments ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``."""
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``."""
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    def span(self, name: str) -> Span:
        """A wall-time span recording into ``<name>.seconds``."""
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return Span(self, name)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable dump of every instrument.

        The format is documented in :mod:`repro.obs.schema`; bucket
        indices become string keys because JSON objects require them.
        """
        return {
            "schema": SCHEMA_VERSION,
            "counters": {
                name: counter.value
                for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: {"value": gauge.value, "updates": gauge.updates}
                for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "count": histogram.count,
                    "sum": histogram.total,
                    "min": histogram.min if histogram.count else 0.0,
                    "max": histogram.max if histogram.count else 0.0,
                    "buckets": {
                        str(index): count
                        for index, count in sorted(histogram.buckets.items())
                    },
                }
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry.

        Counters add, gauges keep the incoming value (last writer wins,
        with update counts summed), histograms merge bucket-wise.  The
        operation is associative, so any merge order over a set of
        worker snapshots yields identical totals.
        """
        if snapshot.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                "cannot merge snapshot with schema %r (expected %r)"
                % (snapshot.get("schema"), SCHEMA_VERSION)
            )
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, dump in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.value = float(dump["value"])
            gauge.updates += int(dump["updates"])
        for name, dump in snapshot.get("histograms", {}).items():
            incoming = Histogram(name)
            incoming.count = int(dump["count"])
            incoming.total = float(dump["sum"])
            if incoming.count:
                incoming.min = float(dump["min"])
                incoming.max = float(dump["max"])
            incoming.buckets = {
                int(index): int(count)
                for index, count in dump.get("buckets", {}).items()
            }
            self.histogram(name).merge(incoming)

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from a snapshot dump."""
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    # -- reporting -----------------------------------------------------

    def summary(self) -> str:
        """A human-readable table of every instrument.

        Histograms print count / mean / p50 / p95 / max; durations
        (names ending ``.seconds``) are scaled to milliseconds.
        """
        lines: List[str] = []
        if self.counters:
            lines.append("counters:")
            for name, counter in sorted(self.counters.items()):
                lines.append("  %-44s %12d" % (name, counter.value))
        if self.gauges:
            lines.append("gauges:")
            for name, gauge in sorted(self.gauges.items()):
                lines.append("  %-44s %12g" % (name, gauge.value))
        if self.histograms:
            lines.append(
                "histograms:%33s %8s %8s %8s %8s"
                % ("count", "mean", "p50", "p95", "max")
            )
            for name, histogram in sorted(self.histograms.items()):
                scale = 1000.0 if name.endswith(".seconds") else 1.0
                label = name[: -len(".seconds")] + " (ms)" if scale != 1.0 else name
                lines.append(
                    "  %-35s %8d %8.3g %8.3g %8.3g %8.3g"
                    % (
                        label,
                        histogram.count,
                        histogram.mean * scale,
                        histogram.p50 * scale,
                        histogram.p95 * scale,
                        (histogram.max if histogram.count else 0.0) * scale,
                    )
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op."""

    def __init__(self) -> None:
        super().__init__(enabled=False)


#: Process-wide default: metrics are off until someone installs a
#: registry (see :func:`use_registry`).
NULL_REGISTRY = NullRegistry()

_CURRENT: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently installed registry (the no-op one by default)."""
    return _CURRENT


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` restores the no-op); returns the old one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = registry if registry is not None else NULL_REGISTRY
    return previous


class use_registry:
    """Context manager installing a registry for a ``with`` block.

    >>> registry = MetricsRegistry()
    >>> with use_registry(registry):
    ...     run_campaign()
    >>> print(registry.summary())
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info: object) -> None:
        set_registry(self._previous)
