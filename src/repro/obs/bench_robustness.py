"""Machine-readable robustness-evaluator benchmarks
(``repro.bench.robustness/v1``).

One snapshot format shared by the committed baseline
(``results/BENCH_robustness.json``) and the CI robustness-smoke gate
(``benchmarks/robustness_smoke.py``)::

    {
      "schema": "repro.bench.robustness/v1",
      "period": <number>,
      "rows": <int>,
      "runs": [                       # window-width sweep
        {"width_rows": <int>,
         "bool_seconds": <number>,    "robust_seconds": <number>,
         "bool_rows_per_second": <number>,
         "robust_rows_per_second": <number>,
         "overhead": <number>},       # robust_seconds / bool_seconds
        ...
      ],
      "ratios": {
        "overhead_widest": <number>,  # overhead at the widest window
        "overhead_flatness": <number> # overhead(widest)/overhead(narrowest)
      }
    }

Both ratios are same-machine quantities — absolute rows/s varies wildly
between hosts, "the margin pass costs a constant factor regardless of
window width" does not:

* ``overhead_widest`` is the price of margins relative to boolean
  verdicts at the widest window.  The robustness lattice evaluates two
  float arrays (lower and upper bounds) where the boolean path
  evaluates one int8 array, so a small constant (~2–4×) is expected; a
  blow-up means the margin path fell off the O(n) kernels.
* ``overhead_flatness`` ≈ 1.0 is the headline property: the
  kernel-backed robustness path scales with trace length exactly like
  the boolean one, independent of window width.  A naive O(n·w)
  robustness aggregate would show up here immediately.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

#: Schema tag carried by every robustness bench snapshot.
ROBUSTNESS_BENCH_SCHEMA_VERSION = "repro.bench.robustness/v1"

_PERIOD = 0.02


def _bench_formula(width_rows: int, period: float):
    from repro.core.parser import parse_formula

    # One future and one past window plus propositional structure: the
    # same operator mix the paper rules use, at a parameterized width.
    millis = int(round(width_rows * period * 1000.0))
    return parse_formula(
        "always[0, %dms] (x < 2.0 and (y > -3.0 or once[0, %dms] y > 0.5))"
        % (millis, millis)
    )


def _bench_trace(rows: int, period: float, seed: int):
    from repro.logs.trace import Trace

    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 1.0, size=rows)
    ys = rng.uniform(0.0, 1.0, size=rows)
    trace = Trace("bench")
    for row in range(rows):
        timestamp = row * period
        trace.record("x", timestamp, float(xs[row]))
        trace.record("y", timestamp, float(ys[row]))
    return trace


def bench_robustness(
    rows: int = 100_000,
    widths: Sequence[int] = (25, 250, 1000),
    repeats: int = 3,
    period: float = _PERIOD,
    seed: int = 2014,
) -> Dict[str, object]:
    """Sweep window widths, timing boolean vs robustness evaluation.

    Returns a ``repro.bench.robustness/v1`` snapshot (see module
    docstring).  Each width is timed best-of-``repeats`` on a fresh
    :class:`~repro.core.evaluator.EvalContext` (no memo carry-over
    between the two lattices), and every robustness result is checked
    for sign consistency against the boolean codes before its timing is
    trusted — a bench that gets wrong answers fast must not pass.
    """
    from repro.core.evaluator import EvalContext, evaluate_formula, evaluate_robustness
    from repro.core.types import FALSE_CODE, TRUE_CODE

    trace = _bench_trace(rows, period, seed)

    runs: List[Dict[str, object]] = []
    for width in widths:
        formula = _bench_formula(width, period)

        bool_best = float("inf")
        robust_best = float("inf")
        for _ in range(repeats):
            ctx = EvalContext(trace.to_view(period, signals=("x", "y")))
            started = time.perf_counter()
            codes = evaluate_formula(formula, ctx)
            bool_best = min(bool_best, time.perf_counter() - started)

            ctx = EvalContext(trace.to_view(period, signals=("x", "y")))
            started = time.perf_counter()
            bounds = evaluate_robustness(formula, ctx)
            robust_best = min(robust_best, time.perf_counter() - started)

        # Untimed audit: the margin signs must agree with the verdicts.
        if ((bounds.lower > 0) & (codes != TRUE_CODE)).any() or (
            (bounds.upper < 0) & (codes != FALSE_CODE)
        ).any():
            raise AssertionError(
                "robustness/boolean sign mismatch at width %d" % width
            )

        runs.append(
            {
                "width_rows": int(width),
                "bool_seconds": bool_best,
                "robust_seconds": robust_best,
                "bool_rows_per_second": rows / bool_best,
                "robust_rows_per_second": rows / robust_best,
                "overhead": robust_best / bool_best,
            }
        )

    narrowest, widest = runs[0], runs[-1]
    ratios = {
        "overhead_widest": widest["overhead"],
        "overhead_flatness": widest["overhead"] / narrowest["overhead"],
    }
    return {
        "schema": ROBUSTNESS_BENCH_SCHEMA_VERSION,
        "period": float(period),
        "rows": int(rows),
        "runs": runs,
        "ratios": ratios,
    }


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def validate_robustness_bench_snapshot(snapshot: object) -> List[str]:
    """All the ways ``snapshot`` fails to be a valid robustness bench
    dump."""
    from repro.obs.schema import _is_count, _is_number

    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot must be a JSON object, got %s" % type(snapshot).__name__]
    if snapshot.get("schema") != ROBUSTNESS_BENCH_SCHEMA_VERSION:
        problems.append(
            "schema must be %r, got %r"
            % (ROBUSTNESS_BENCH_SCHEMA_VERSION, snapshot.get("schema"))
        )
    if not _is_number(snapshot.get("period")) or snapshot.get("period", 0) <= 0:
        problems.append("needs a positive numeric 'period'")
    if not _is_count(snapshot.get("rows")) or not snapshot.get("rows"):
        problems.append("needs a positive integer 'rows'")
    runs = snapshot.get("runs")
    if not isinstance(runs, list) or len(runs) < 2:
        problems.append("'runs' must list at least two window widths")
        runs = []
    last_width = -1
    for index, entry in enumerate(runs):
        where = "runs[%d]" % index
        if not isinstance(entry, dict):
            problems.append("%s must be an object" % where)
            continue
        if not _is_count(entry.get("width_rows")):
            problems.append(
                "%s 'width_rows' must be a non-negative integer" % where
            )
        elif entry["width_rows"] <= last_width:
            problems.append(
                "%s widths must be strictly increasing" % where
            )
        else:
            last_width = entry["width_rows"]
        for key in (
            "bool_seconds",
            "robust_seconds",
            "bool_rows_per_second",
            "robust_rows_per_second",
            "overhead",
        ):
            if not _is_number(entry.get(key)) or entry.get(key, 0) <= 0:
                problems.append("%s %r must be a positive number" % (where, key))
    ratios = snapshot.get("ratios")
    if not isinstance(ratios, dict):
        problems.append("missing or non-object section 'ratios'")
    else:
        for key in ("overhead_widest", "overhead_flatness"):
            if not _is_number(ratios.get(key)) or ratios.get(key, 0) <= 0:
                problems.append("ratio %r must be a positive number" % key)
    return problems


def require_valid_robustness_bench_snapshot(
    snapshot: object,
) -> Dict[str, object]:
    """Validate and return a snapshot; raise ``ValueError`` otherwise."""
    problems = validate_robustness_bench_snapshot(snapshot)
    if problems:
        raise ValueError(
            "invalid robustness bench snapshot: %s" % "; ".join(problems)
        )
    return snapshot  # type: ignore[return-value]


def format_robustness_bench(snapshot: Dict[str, object]) -> str:
    """A human-readable table for a robustness bench snapshot."""
    lines = [
        "ROBUSTNESS EVALUATOR SWEEP (%d rows at %.0f ms)"
        % (snapshot["rows"], snapshot["period"] * 1000.0),
        "",
        "%-12s %14s %14s %16s %16s %10s"
        % (
            "width",
            "bool s",
            "robust s",
            "bool rows/s",
            "robust rows/s",
            "overhead",
        ),
    ]
    for entry in snapshot["runs"]:
        lines.append(
            "%-12s %14.4f %14.4f %16.0f %16.0f %10.2f"
            % (
                "%d rows" % entry["width_rows"],
                entry["bool_seconds"],
                entry["robust_seconds"],
                entry["bool_rows_per_second"],
                entry["robust_rows_per_second"],
                entry["overhead"],
            )
        )
    lines.append("")
    for name in sorted(snapshot["ratios"]):
        lines.append("ratio %-22s %.3f" % (name, snapshot["ratios"][name]))
    return "\n".join(lines)
