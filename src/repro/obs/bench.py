"""Machine-readable monitor benchmarks — the window-kernel sweep.

One snapshot format (``repro.bench.monitor/v1``) shared by the full
benchmark suite (``benchmarks/test_bench_monitor_perf.py`` publishes
``results/BENCH_monitor.json``) and the CI perf-smoke gate
(``benchmarks/perf_smoke.py`` reruns a reduced-scale sweep and compares
against the committed baseline)::

    {
      "schema": "repro.bench.monitor/v1",
      "rows": <int>,                 # trace rows per measurement
      "period": <number>,            # seconds per row
      "sweep": [                     # width x kernel grid
        {"width_rows": <int>, "kernel": "block"|"strided",
         "seconds": <number>, "rows_per_second": <number>}, ...
      ],
      "memo": [                      # cross-rule memoization ablation
        {"memo": <bool>, "seconds": <number>,
         "rows_per_second": <number>}, ...
      ],
      "speedups": {                  # derived ratios (same machine)
        "w<width>": <number>,        # block vs strided per width
        "memo": <number>             # memo on vs off
      }
    }

Speedups are same-machine ratios, which is what makes them comparable
across hosts: absolute rows/s varies wildly between laptops and CI
runners, but "the O(n) kernel is k-times the O(n*w) kernel on identical
input" does not.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

#: Schema tag carried by every bench snapshot.
BENCH_SCHEMA_VERSION = "repro.bench.monitor/v1"

#: The paper's fast message period.
_PERIOD = 0.02

#: Rules sharing one windowed subformula, for the memoization ablation.
_MEMO_RULE_COUNT = 6


def _bench_trace(rows: int, period: float, seed: int):
    """A uniform two-signal trace with benign values (no violations).

    Values stay below every threshold the bench rules use, so both
    kernels run the common all-satisfied path and the window aggregation
    dominates the measurement.
    """
    # Imported here, not at module scope: the monitor core itself pulls
    # in repro.obs for instrumentation.
    from repro.logs.trace import Trace

    rng = np.random.default_rng(seed)
    trace = Trace("bench")
    for name in ("x", "y"):
        values = rng.uniform(0.0, 1.0, size=rows)
        for index in range(rows):
            trace.record(name, index * period, float(values[index]))
    return trace


def _width_rule(width_rows: int, period: float):
    from repro.core.monitor import Rule

    # All four bounded operators over shared comparisons: the window
    # aggregation dominates the measurement (the comparisons are
    # memoized), and both the future and the past kernels are exercised.
    window = "%gms" % (width_rows * period * 1000.0)
    formula = (
        "(always[0, %(w)s] x < 2.0) and (eventually[0, %(w)s] y < 2.0) "
        "and (historically[0, %(w)s] x < 2.0) and (once[0, %(w)s] y < 2.0)"
        % {"w": window}
    )
    return Rule.from_text("w%d" % width_rows, "sweep", formula)


def _memo_rules(period: float) -> List[object]:
    from repro.core.monitor import Rule

    formula = "always[0, 2s] (x < 2.0 and eventually[0, 1s] y < 2.0)"
    return [
        Rule.from_text("m%d" % index, "memo", formula, gate="x < 3.0")
        for index in range(_MEMO_RULE_COUNT)
    ]


def _time_check(monitor, view, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one ``check_view`` call."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        monitor.check_view(view)
        best = min(best, time.perf_counter() - started)
    return best


def bench_monitor(
    rows: int = 15000,
    widths: Sequence[int] = (10, 100, 1000),
    repeats: int = 3,
    period: float = _PERIOD,
    seed: int = 2014,
) -> Dict[str, object]:
    """Run the width x kernel sweep plus the memo ablation.

    Returns a ``repro.bench.monitor/v1`` snapshot (see module docstring).
    """
    from repro.core.monitor import Monitor
    from repro.core.windows import use_kernel

    trace = _bench_trace(rows, period, seed)

    sweep: List[Dict[str, object]] = []
    per_width: Dict[int, Dict[str, float]] = {}
    for width in widths:
        monitor = Monitor([_width_rule(width, period)], period=period)
        view = trace.to_view(period, signals=monitor.required_signals())
        per_width[width] = {}
        for kernel in ("block", "strided"):
            with use_kernel(kernel):
                seconds = _time_check(monitor, view, repeats)
            per_width[width][kernel] = seconds
            sweep.append(
                {
                    "width_rows": int(width),
                    "kernel": kernel,
                    "seconds": seconds,
                    "rows_per_second": rows / seconds,
                }
            )

    memo_monitors = {
        flag: Monitor(_memo_rules(period), period=period, memo=flag)
        for flag in (True, False)
    }
    view = trace.to_view(
        period, signals=memo_monitors[True].required_signals()
    )
    memo: List[Dict[str, object]] = []
    memo_seconds: Dict[bool, float] = {}
    for flag in (True, False):
        seconds = _time_check(memo_monitors[flag], view, repeats)
        memo_seconds[flag] = seconds
        memo.append(
            {
                "memo": flag,
                "seconds": seconds,
                "rows_per_second": rows / seconds,
            }
        )

    speedups: Dict[str, float] = {
        "w%d" % width: kernels["strided"] / kernels["block"]
        for width, kernels in per_width.items()
    }
    speedups["memo"] = memo_seconds[False] / memo_seconds[True]

    return {
        "schema": BENCH_SCHEMA_VERSION,
        "rows": int(rows),
        "period": float(period),
        "sweep": sweep,
        "memo": memo,
        "speedups": speedups,
    }


def format_bench(snapshot: Dict[str, object]) -> str:
    """A human-readable table for a bench snapshot."""
    lines = [
        "WINDOW KERNEL SWEEP (%d rows at %.0f ms)"
        % (snapshot["rows"], snapshot["period"] * 1000.0),
        "",
        "%-12s %-9s %12s %16s"
        % ("width", "kernel", "seconds", "rows/second"),
    ]
    for entry in snapshot["sweep"]:
        lines.append(
            "%-12s %-9s %12.5f %16.0f"
            % (
                "%d rows" % entry["width_rows"],
                entry["kernel"],
                entry["seconds"],
                entry["rows_per_second"],
            )
        )
    lines.append("")
    for entry in snapshot["memo"]:
        lines.append(
            "%-22s %12.5f %16.0f"
            % (
                "memo %s" % ("on" if entry["memo"] else "off"),
                entry["seconds"],
                entry["rows_per_second"],
            )
        )
    lines.append("")
    for name in sorted(snapshot["speedups"]):
        lines.append(
            "speedup %-14s %.2fx" % (name, snapshot["speedups"][name])
        )
    return "\n".join(lines)
