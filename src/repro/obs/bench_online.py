"""Machine-readable online-monitor benchmarks (``repro.bench.online/v1``).

One snapshot format shared by the committed baseline
(``results/BENCH_online.json``) and the CI fleet-smoke gate
(``benchmarks/fleet_smoke.py``)::

    {
      "schema": "repro.bench.online/v1",
      "period": <number>,
      "rows_base": <int>,            # rows at scale 1
      "runs": [                      # stream-length scaling sweep
        {"scale": <int>, "events": <int>, "seconds": <number>,
         "events_per_second": <number>,
         "peak_span_rows": <int>,    # max per-signal buffer row span seen
         "max_buffer_rows": <int>},  # the bounded-memory invariant
        ...
      ],
      "fleet": {                     # multi-stream service replay
        "streams": <int>, "events": <int>, "seconds": <number>,
        "events_per_second": <number>, "peak_buffer_rows": <int>
      },
      "ratios": {
        "throughput_flatness": <number>,  # eps(longest)/eps(shortest)
        "buffer_flatness": <number>       # peak(longest)/peak(shortest)
      }
    }

The two ratios are the regression signal, and both are same-machine
quantities (absolute events/s varies wildly between hosts; "doubling the
stream does not change throughput or peak buffer" does not):

* ``throughput_flatness`` ~ 1.0 means feeding is O(1) amortized per
  event.  The pre-ring-buffer trim re-recorded the whole retained window
  into a fresh trace each chunk, which shows up here immediately.
* ``buffer_flatness`` = 1.0 means peak buffer occupancy is set by the
  retention/horizon/chunk bound, not by stream length — the
  bounded-memory property measured rather than asserted.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

#: Schema tag carried by every online bench snapshot.
ONLINE_BENCH_SCHEMA_VERSION = "repro.bench.online/v1"

_PERIOD = 0.02


def _bench_rules():
    from repro.core.monitor import Rule

    # Propositional + future-temporal + past-temporal: the mix drives
    # the chunking/trim machinery through every emission path while the
    # benign values keep the all-satisfied fast path hot.
    return [
        Rule.from_text("prop", "bench", "x < 2.0"),
        Rule.from_text("fut", "bench", "always[0, 400ms] x < 2.0"),
        Rule.from_text("past", "bench", "once[0, 400ms] y < 2.0"),
    ]


def _bench_events(rows: int, period: float, seed: int) -> List:
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 1.0, size=rows)
    ys = rng.uniform(0.0, 1.0, size=rows)
    events = []
    for index in range(rows):
        timestamp = index * period
        events.append((timestamp, "x", float(xs[index])))
        events.append((timestamp, "y", float(ys[index])))
    return events


def _monitor(period: float, min_chunk_rows: int, retention: float):
    from repro.core.online import OnlineMonitor

    return OnlineMonitor(
        _bench_rules(),
        period=period,
        min_chunk_rows=min_chunk_rows,
        retention=retention,
    )


def bench_online(
    rows: int = 6000,
    scales: Sequence[int] = (1, 2),
    repeats: int = 2,
    period: float = _PERIOD,
    min_chunk_rows: int = 50,
    retention: float = 0.5,
    fleet_streams: int = 8,
    seed: int = 2014,
) -> Dict[str, object]:
    """Run the stream-length scaling sweep plus a fleet service replay.

    Returns a ``repro.bench.online/v1`` snapshot (see module docstring).
    Each scale gets an untimed audit pass that checks the buffer row
    span after every feed (the bounded-memory invariant, measured) and a
    separate best-of-``repeats`` timing pass.
    """
    runs: List[Dict[str, object]] = []
    for scale in scales:
        events = _bench_events(rows * scale, period, seed)

        # Audit pass: bound checked at every single feed return.
        audit = _monitor(period, min_chunk_rows, retention)
        peak_span = 0
        for timestamp, signal, value in events:
            audit.feed(timestamp, signal, value)
            span = audit.buffer_row_span()
            if span > peak_span:
                peak_span = span
            if span > audit.max_buffer_rows:
                raise AssertionError(
                    "bounded-memory invariant broken at scale %d: "
                    "span %d > bound %d" % (scale, span, audit.max_buffer_rows)
                )
        audit.finish()

        best = float("inf")
        for _ in range(repeats):
            online = _monitor(period, min_chunk_rows, retention)
            started = time.perf_counter()
            for timestamp, signal, value in events:
                online.feed(timestamp, signal, value)
            online.finish()
            best = min(best, time.perf_counter() - started)

        runs.append(
            {
                "scale": int(scale),
                "events": len(events),
                "seconds": best,
                "events_per_second": len(events) / best,
                "peak_span_rows": int(peak_span),
                "max_buffer_rows": int(audit.max_buffer_rows),
            }
        )

    fleet = _bench_fleet(
        rows, period, min_chunk_rows, retention, fleet_streams, seed
    )

    shortest, longest = runs[0], runs[-1]
    ratios = {
        "throughput_flatness": (
            longest["events_per_second"] / shortest["events_per_second"]
        ),
        "buffer_flatness": (
            longest["peak_span_rows"] / max(shortest["peak_span_rows"], 1)
        ),
    }
    return {
        "schema": ONLINE_BENCH_SCHEMA_VERSION,
        "period": float(period),
        "rows_base": int(rows),
        "runs": runs,
        "fleet": fleet,
        "ratios": ratios,
    }


def _bench_fleet(
    rows: int,
    period: float,
    min_chunk_rows: int,
    retention: float,
    streams: int,
    seed: int,
) -> Dict[str, object]:
    from repro.fleet import replay_traces
    from repro.logs.trace import Trace

    rng = np.random.default_rng(seed + 1)
    traces = []
    for index in range(4):
        trace = Trace("bench%d" % index)
        xs = rng.uniform(0.0, 1.0, size=rows)
        ys = rng.uniform(0.0, 1.0, size=rows)
        for row in range(rows):
            timestamp = row * period
            trace.record("x", timestamp, float(xs[row]))
            trace.record("y", timestamp, float(ys[row]))
        traces.append(trace)

    started = time.perf_counter()
    report = replay_traces(
        traces,
        _bench_rules(),
        streams=streams,
        period=period,
        min_chunk_rows=min_chunk_rows,
        retention=retention,
    )
    seconds = time.perf_counter() - started
    fleet = report.rollup["fleet"]
    return {
        "streams": int(fleet["streams"]),
        "events": int(fleet["events"]),
        "seconds": seconds,
        "events_per_second": fleet["events"] / seconds,
        "peak_buffer_rows": int(fleet["peak_buffer_rows"]),
    }


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def validate_online_bench_snapshot(snapshot: object) -> List[str]:
    """All the ways ``snapshot`` fails to be a valid online bench dump."""
    from repro.obs.schema import _is_count, _is_number

    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot must be a JSON object, got %s" % type(snapshot).__name__]
    if snapshot.get("schema") != ONLINE_BENCH_SCHEMA_VERSION:
        problems.append(
            "schema must be %r, got %r"
            % (ONLINE_BENCH_SCHEMA_VERSION, snapshot.get("schema"))
        )
    if not _is_number(snapshot.get("period")) or snapshot.get("period", 0) <= 0:
        problems.append("needs a positive numeric 'period'")
    if not _is_count(snapshot.get("rows_base")):
        problems.append("needs a non-negative integer 'rows_base'")
    runs = snapshot.get("runs")
    if not isinstance(runs, list) or len(runs) < 2:
        problems.append("'runs' must list at least two scales")
        runs = []
    for index, entry in enumerate(runs):
        where = "runs[%d]" % index
        if not isinstance(entry, dict):
            problems.append("%s must be an object" % where)
            continue
        for key in ("scale", "events", "peak_span_rows", "max_buffer_rows"):
            if not _is_count(entry.get(key)):
                problems.append(
                    "%s %r must be a non-negative integer" % (where, key)
                )
        for key in ("seconds", "events_per_second"):
            if not _is_number(entry.get(key)) or entry.get(key, 0) <= 0:
                problems.append("%s %r must be a positive number" % (where, key))
        if (
            _is_count(entry.get("peak_span_rows"))
            and _is_count(entry.get("max_buffer_rows"))
            and entry["peak_span_rows"] > entry["max_buffer_rows"]
        ):
            problems.append(
                "%s breaks the memory bound: peak span %d > %d"
                % (where, entry["peak_span_rows"], entry["max_buffer_rows"])
            )
    fleet = snapshot.get("fleet")
    if not isinstance(fleet, dict):
        problems.append("missing or non-object section 'fleet'")
    else:
        for key in ("streams", "events", "peak_buffer_rows"):
            if not _is_count(fleet.get(key)):
                problems.append(
                    "fleet %r must be a non-negative integer" % key
                )
        for key in ("seconds", "events_per_second"):
            if not _is_number(fleet.get(key)) or fleet.get(key, 0) <= 0:
                problems.append("fleet %r must be a positive number" % key)
    ratios = snapshot.get("ratios")
    if not isinstance(ratios, dict):
        problems.append("missing or non-object section 'ratios'")
    else:
        for key in ("throughput_flatness", "buffer_flatness"):
            if not _is_number(ratios.get(key)) or ratios.get(key, 0) <= 0:
                problems.append("ratio %r must be a positive number" % key)
    return problems


def require_valid_online_bench_snapshot(snapshot: object) -> Dict[str, object]:
    """Validate and return a snapshot; raise ``ValueError`` otherwise."""
    problems = validate_online_bench_snapshot(snapshot)
    if problems:
        raise ValueError(
            "invalid online bench snapshot: %s" % "; ".join(problems)
        )
    return snapshot  # type: ignore[return-value]


def format_online_bench(snapshot: Dict[str, object]) -> str:
    """A human-readable table for an online bench snapshot."""
    lines = [
        "ONLINE MONITOR SCALING (base %d rows at %.0f ms)"
        % (snapshot["rows_base"], snapshot["period"] * 1000.0),
        "",
        "%-8s %10s %10s %16s %10s %10s"
        % ("scale", "events", "seconds", "events/second", "peak rows", "bound"),
    ]
    for entry in snapshot["runs"]:
        lines.append(
            "%-8s %10d %10.4f %16.0f %10d %10d"
            % (
                "%dx" % entry["scale"],
                entry["events"],
                entry["seconds"],
                entry["events_per_second"],
                entry["peak_span_rows"],
                entry["max_buffer_rows"],
            )
        )
    fleet = snapshot["fleet"]
    lines.append("")
    lines.append(
        "fleet replay: %d streams, %d events, %.0f events/s, peak %d rows"
        % (
            fleet["streams"],
            fleet["events"],
            fleet["events_per_second"],
            fleet["peak_buffer_rows"],
        )
    )
    lines.append("")
    for name in sorted(snapshot["ratios"]):
        lines.append("ratio %-22s %.3f" % (name, snapshot["ratios"][name]))
    return "\n".join(lines)
