"""The metrics snapshot JSON format — documentation and validation.

A snapshot is one JSON object::

    {
      "schema": "repro.obs/v1",
      "counters":   {"<name>": <int>, ...},
      "gauges":     {"<name>": {"value": <number>, "updates": <int>}, ...},
      "histograms": {"<name>": {"count": <int>, "sum": <number>,
                                "min": <number>, "max": <number>,
                                "buckets": {"<bucket index>": <int>, ...}},
                     ...}
    }

Histogram buckets are log-scale (see :mod:`repro.obs.metrics`); bucket
keys are stringified integer indices because JSON object keys must be
strings.  Merging two snapshots adds counters, merges histograms
bucket-wise, and keeps the last gauge value — see
:meth:`repro.obs.MetricsRegistry.merge_snapshot`.

Validation here is hand-rolled (the repo is zero-dependency beyond
numpy): :func:`validate_snapshot` returns a list of problems, empty
when the document conforms, and :func:`require_valid_snapshot` raises
on the first problem — the CI smoke step calls the latter.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.metrics import SCHEMA_VERSION


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_count(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate_snapshot(snapshot: object) -> List[str]:
    """All the ways ``snapshot`` fails to be a valid metrics dump.

    Returns an empty list when the document conforms to the
    ``repro.obs/v1`` format described in the module docstring.
    """
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot must be a JSON object, got %s" % type(snapshot).__name__]
    if snapshot.get("schema") != SCHEMA_VERSION:
        problems.append(
            "schema must be %r, got %r" % (SCHEMA_VERSION, snapshot.get("schema"))
        )
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            problems.append("missing or non-object section %r" % section)
    if problems:
        return problems

    for name, value in snapshot["counters"].items():
        if not _is_count(value):
            problems.append(
                "counter %r must be a non-negative integer, got %r" % (name, value)
            )
    for name, dump in snapshot["gauges"].items():
        if not isinstance(dump, dict):
            problems.append("gauge %r must be an object" % name)
            continue
        if not _is_number(dump.get("value")):
            problems.append("gauge %r needs a numeric 'value'" % name)
        if not _is_count(dump.get("updates")):
            problems.append("gauge %r needs an integer 'updates'" % name)
    for name, dump in snapshot["histograms"].items():
        problems.extend(_validate_histogram(name, dump))
    return problems


def _validate_histogram(name: str, dump: object) -> List[str]:
    problems: List[str] = []
    if not isinstance(dump, dict):
        return ["histogram %r must be an object" % name]
    if not _is_count(dump.get("count")):
        problems.append("histogram %r needs an integer 'count'" % name)
    for key in ("sum", "min", "max"):
        if not _is_number(dump.get(key)):
            problems.append("histogram %r needs a numeric %r" % (name, key))
    buckets = dump.get("buckets")
    if not isinstance(buckets, dict):
        return problems + ["histogram %r needs a 'buckets' object" % name]
    total = 0
    for index, count in buckets.items():
        try:
            int(index)
        except (TypeError, ValueError):
            problems.append(
                "histogram %r bucket key %r is not an integer index" % (name, index)
            )
        if not _is_count(count):
            problems.append(
                "histogram %r bucket %r count must be a non-negative integer"
                % (name, index)
            )
        else:
            total += count
    if _is_count(dump.get("count")) and total != dump["count"]:
        problems.append(
            "histogram %r bucket counts sum to %d but 'count' is %d"
            % (name, total, dump["count"])
        )
    return problems


def require_valid_snapshot(snapshot: object) -> Dict[str, object]:
    """Validate and return ``snapshot``; raise ``ValueError`` otherwise."""
    problems = validate_snapshot(snapshot)
    if problems:
        raise ValueError(
            "invalid metrics snapshot: %s" % "; ".join(problems)
        )
    return snapshot  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Monitor bench snapshots (repro.bench.monitor/v1)
# ----------------------------------------------------------------------


def _positive_number(value: object) -> bool:
    return _is_number(value) and value > 0


def validate_bench_snapshot(snapshot: object) -> List[str]:
    """All the ways ``snapshot`` fails to be a valid bench dump.

    The format (``repro.bench.monitor/v1``) is documented in
    :mod:`repro.obs.bench`; this is what CI's perf-smoke gate runs
    against both its fresh measurement and the committed baseline.
    """
    from repro.obs.bench import BENCH_SCHEMA_VERSION

    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot must be a JSON object, got %s" % type(snapshot).__name__]
    if snapshot.get("schema") != BENCH_SCHEMA_VERSION:
        problems.append(
            "schema must be %r, got %r"
            % (BENCH_SCHEMA_VERSION, snapshot.get("schema"))
        )
    if not _is_count(snapshot.get("rows")) or snapshot.get("rows") == 0:
        problems.append("'rows' must be a positive integer")
    if not _positive_number(snapshot.get("period")):
        problems.append("'period' must be a positive number")

    sweep = snapshot.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        problems.append("'sweep' must be a non-empty array")
    else:
        for position, entry in enumerate(sweep):
            where = "sweep[%d]" % position
            if not isinstance(entry, dict):
                problems.append("%s must be an object" % where)
                continue
            if not _is_count(entry.get("width_rows")) or entry.get("width_rows") == 0:
                problems.append("%s needs a positive integer 'width_rows'" % where)
            if entry.get("kernel") not in ("block", "strided"):
                problems.append(
                    "%s kernel must be 'block' or 'strided', got %r"
                    % (where, entry.get("kernel"))
                )
            for key in ("seconds", "rows_per_second"):
                if not _positive_number(entry.get(key)):
                    problems.append("%s needs a positive numeric %r" % (where, key))

    memo = snapshot.get("memo")
    if not isinstance(memo, list) or not memo:
        problems.append("'memo' must be a non-empty array")
    else:
        for position, entry in enumerate(memo):
            where = "memo[%d]" % position
            if not isinstance(entry, dict):
                problems.append("%s must be an object" % where)
                continue
            if not isinstance(entry.get("memo"), bool):
                problems.append("%s needs a boolean 'memo'" % where)
            for key in ("seconds", "rows_per_second"):
                if not _positive_number(entry.get(key)):
                    problems.append("%s needs a positive numeric %r" % (where, key))

    speedups = snapshot.get("speedups")
    if not isinstance(speedups, dict) or not speedups:
        problems.append("'speedups' must be a non-empty object")
    else:
        for name, value in speedups.items():
            if not _positive_number(value):
                problems.append(
                    "speedup %r must be a positive number, got %r" % (name, value)
                )
    return problems


def require_valid_bench_snapshot(snapshot: object) -> Dict[str, object]:
    """Validate and return a bench snapshot; raise ``ValueError`` otherwise."""
    problems = validate_bench_snapshot(snapshot)
    if problems:
        raise ValueError(
            "invalid bench snapshot: %s" % "; ".join(problems)
        )
    return snapshot  # type: ignore[return-value]
