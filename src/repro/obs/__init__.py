"""Campaign observability — counters, gauges, histograms, spans.

The instrumentation layer behind ``table1 --metrics-out`` and
``check --metrics-out``: hot paths report into the *currently installed*
:class:`MetricsRegistry` (a no-op by default), worker processes snapshot
their private registries, and snapshots merge associatively into one
campaign-level report.  See :mod:`repro.obs.metrics` for the instruments
and :mod:`repro.obs.schema` for the JSON snapshot format.
"""

from repro.obs.bench import BENCH_SCHEMA_VERSION, bench_monitor, format_bench
from repro.obs.bench_batch import (
    BATCH_BENCH_SCHEMA_VERSION,
    bench_batch,
    format_batch_bench,
    require_valid_batch_bench_snapshot,
    validate_batch_bench_snapshot,
)
from repro.obs.bench_online import (
    ONLINE_BENCH_SCHEMA_VERSION,
    bench_online,
    format_online_bench,
    require_valid_online_bench_snapshot,
    validate_online_bench_snapshot,
)
from repro.obs.bench_robustness import (
    ROBUSTNESS_BENCH_SCHEMA_VERSION,
    bench_robustness,
    format_robustness_bench,
    require_valid_robustness_bench_snapshot,
    validate_robustness_bench_snapshot,
)
from repro.obs.metrics import (
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    Span,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.schema import (
    require_valid_bench_snapshot,
    require_valid_snapshot,
    validate_bench_snapshot,
    validate_snapshot,
)

__all__ = [
    "BATCH_BENCH_SCHEMA_VERSION",
    "BENCH_SCHEMA_VERSION",
    "ONLINE_BENCH_SCHEMA_VERSION",
    "ROBUSTNESS_BENCH_SCHEMA_VERSION",
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Span",
    "get_registry",
    "set_registry",
    "use_registry",
    "bench_batch",
    "bench_monitor",
    "bench_online",
    "bench_robustness",
    "format_batch_bench",
    "format_bench",
    "format_online_bench",
    "format_robustness_bench",
    "require_valid_batch_bench_snapshot",
    "require_valid_bench_snapshot",
    "require_valid_online_bench_snapshot",
    "require_valid_robustness_bench_snapshot",
    "require_valid_snapshot",
    "validate_batch_bench_snapshot",
    "validate_bench_snapshot",
    "validate_online_bench_snapshot",
    "validate_robustness_bench_snapshot",
    "validate_snapshot",
]
