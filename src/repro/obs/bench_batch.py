"""Machine-readable batched-checking benchmarks
(``repro.bench.batch/v1``).

One snapshot format shared by the committed baseline
(``results/BENCH_batch.json``) and the CI batch-smoke gate
(``benchmarks/batch_smoke.py``)::

    {
      "schema": "repro.bench.batch/v1",
      "period": <number>,
      "traces": <int>,              # traces in the workload
      "rows_total": <int>,          # resampled rows across all traces
      "rules": <int>,               # rules checked per trace
      "runs": {
        "per_trace_seconds": <number>,  # median per-trace loop
        "batch_seconds": <number>,      # median store-backed check_batch
        "pack_seconds": <number>        # one-time grid pack cost
      },
      "bytes": {
        "trace_pickle": <int>,      # pickling every trace (old payload)
        "store_handle": <int>       # pickling the store handle (new)
      },
      "ratios": {
        "speedup": <number>,        # per_trace_seconds / batch_seconds
        "pickle_collapse": <number> # trace_pickle / store_handle
      },
      "identical": true             # letters byte-identical either way
    }

Both ratios are same-machine quantities — absolute seconds vary wildly
between hosts, the two headline properties do not:

* ``speedup`` is the price of the per-trace loop relative to one
  batched pass over a grid-packed columnar store: the store amortizes
  resampling at pack time and the batch evaluates each rule once over
  2-D ``(trace, row)`` columns instead of once per trace.
* ``pickle_collapse`` is the process-boundary claim: what used to cross
  as pickled trace data now crosses as a store *handle* (a path or
  SharedMemory name), so the payload is O(config) regardless of how
  much trace data the campaign produced.

The workload replicates the synthetic paper drive logs ``replicas``
times with distinct seeds — equal-duration traces form groups exactly
like Table I's repeated test rows, which is the shape
:meth:`~repro.core.monitor.Monitor.check_batch` stacks.  The bench
*audits itself*: it refuses to report a timing unless the batched
reports are byte-identical to the per-trace loop's — a bench that gets
wrong answers fast must not pass.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from typing import Dict, List

#: Schema tag carried by every batch bench snapshot.
BATCH_BENCH_SCHEMA_VERSION = "repro.bench.batch/v1"

_PERIOD = 0.02


def _workload(replicas: int, seed: int) -> List[object]:
    """Equal-duration trace groups, Table I shaped: each replica of a
    drive scenario has the same row count as its siblings."""
    from repro.logs.vehicle_logs import generate_drive_logs

    traces = []
    for replica in range(replicas):
        for trace in generate_drive_logs(seed=seed + replica):
            trace.name = "%s#%d" % (trace.name, replica)
            traces.append(trace)
    return traces


def _median(samples: List[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _report_bytes(reports) -> bytes:
    """Canonical byte serialization of a report list (NaN-safe — dict
    equality is not, because ``nan != nan`` in witness values)."""
    return json.dumps([report.to_dict() for report in reports]).encode()


def bench_batch(
    replicas: int = 4,
    repeats: int = 5,
    period: float = _PERIOD,
    seed: int = 2014,
) -> Dict[str, object]:
    """Time the per-trace loop against store-backed batched checking.

    Returns a ``repro.bench.batch/v1`` snapshot (see module docstring).
    Each side is timed median-of-``repeats`` with a fresh
    :class:`~repro.core.monitor.Monitor` per run; the grid pack is timed
    once (it is a one-time cost the store amortizes over every
    subsequent check).  Raises ``AssertionError`` if the batched reports
    are not byte-identical to the per-trace loop's.
    """
    from repro.core.monitor import Monitor
    from repro.logs.store import TraceStore
    from repro.rules.safety_rules import paper_rules

    traces = _workload(replicas, seed)

    def per_trace_run():
        monitor = Monitor(paper_rules())
        return [monitor.check(trace) for trace in traces]

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        path = os.path.join(tmp, "bench.rtc")
        started = time.perf_counter()
        TraceStore.pack(traces, path, grid=period)
        pack_seconds = time.perf_counter() - started
        store = TraceStore.open(path)
        try:

            def batch_run():
                monitor = Monitor(paper_rules())
                return monitor.check_batch(store)

            baseline_reports = per_trace_run()
            batch_reports = batch_run()
            identical = _report_bytes(baseline_reports) == _report_bytes(
                batch_reports
            )
            if not identical:
                raise AssertionError(
                    "batched reports diverged from the per-trace loop"
                )

            per_trace_samples = []
            batch_samples = []
            for _ in range(repeats):
                started = time.perf_counter()
                per_trace_run()
                per_trace_samples.append(time.perf_counter() - started)
                started = time.perf_counter()
                batch_run()
                batch_samples.append(time.perf_counter() - started)

            rows_total = sum(
                trace.to_view(period).n_rows for trace in traces
            )
            handle_bytes = len(pickle.dumps(store.source))
        finally:
            store.close()

    trace_pickle = sum(len(pickle.dumps(trace)) for trace in traces)
    per_trace_seconds = _median(per_trace_samples)
    batch_seconds = _median(batch_samples)
    return {
        "schema": BATCH_BENCH_SCHEMA_VERSION,
        "period": float(period),
        "traces": len(traces),
        "rows_total": int(rows_total),
        "rules": len(paper_rules()),
        "runs": {
            "per_trace_seconds": per_trace_seconds,
            "batch_seconds": batch_seconds,
            "pack_seconds": pack_seconds,
        },
        "bytes": {
            "trace_pickle": int(trace_pickle),
            "store_handle": int(handle_bytes),
        },
        "ratios": {
            "speedup": per_trace_seconds / batch_seconds,
            "pickle_collapse": trace_pickle / handle_bytes,
        },
        "identical": identical,
    }


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def validate_batch_bench_snapshot(snapshot: object) -> List[str]:
    """All the ways ``snapshot`` fails to be a valid batch bench dump."""
    from repro.obs.schema import _is_count, _is_number

    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return [
            "snapshot must be a JSON object, got %s" % type(snapshot).__name__
        ]
    if snapshot.get("schema") != BATCH_BENCH_SCHEMA_VERSION:
        problems.append(
            "schema must be %r, got %r"
            % (BATCH_BENCH_SCHEMA_VERSION, snapshot.get("schema"))
        )
    if not _is_number(snapshot.get("period")) or snapshot.get("period", 0) <= 0:
        problems.append("needs a positive numeric 'period'")
    for key in ("traces", "rows_total", "rules"):
        if not _is_count(snapshot.get(key)) or not snapshot.get(key):
            problems.append("needs a positive integer %r" % key)
    runs = snapshot.get("runs")
    if not isinstance(runs, dict):
        problems.append("missing or non-object section 'runs'")
    else:
        for key in ("per_trace_seconds", "batch_seconds", "pack_seconds"):
            if not _is_number(runs.get(key)) or runs.get(key, 0) <= 0:
                problems.append(
                    "runs %r must be a positive number" % key
                )
    sizes = snapshot.get("bytes")
    if not isinstance(sizes, dict):
        problems.append("missing or non-object section 'bytes'")
    else:
        for key in ("trace_pickle", "store_handle"):
            if not _is_count(sizes.get(key)) or not sizes.get(key):
                problems.append("bytes %r must be a positive integer" % key)
    ratios = snapshot.get("ratios")
    if not isinstance(ratios, dict):
        problems.append("missing or non-object section 'ratios'")
    else:
        for key in ("speedup", "pickle_collapse"):
            if not _is_number(ratios.get(key)) or ratios.get(key, 0) <= 0:
                problems.append("ratio %r must be a positive number" % key)
    if snapshot.get("identical") is not True:
        problems.append(
            "'identical' must be true — a batch bench whose letters "
            "diverge from the per-trace loop is meaningless"
        )
    return problems


def require_valid_batch_bench_snapshot(snapshot: object) -> Dict[str, object]:
    """Validate and return a snapshot; raise ``ValueError`` otherwise."""
    problems = validate_batch_bench_snapshot(snapshot)
    if problems:
        raise ValueError(
            "invalid batch bench snapshot: %s" % "; ".join(problems)
        )
    return snapshot  # type: ignore[return-value]


def format_batch_bench(snapshot: Dict[str, object]) -> str:
    """A human-readable summary for a batch bench snapshot."""
    runs = snapshot["runs"]
    sizes = snapshot["bytes"]
    ratios = snapshot["ratios"]
    lines = [
        "BATCHED CHECKING vs PER-TRACE LOOP (%d traces, %d rows, %d rules)"
        % (snapshot["traces"], snapshot["rows_total"], snapshot["rules"]),
        "",
        "per-trace loop   %10.3f s" % runs["per_trace_seconds"],
        "batched (store)  %10.3f s" % runs["batch_seconds"],
        "grid pack (once) %10.3f s" % runs["pack_seconds"],
        "",
        "trace pickle     %10d bytes" % sizes["trace_pickle"],
        "store handle     %10d bytes" % sizes["store_handle"],
        "",
        "ratio speedup           %10.2fx" % ratios["speedup"],
        "ratio pickle_collapse   %10.0fx" % ratios["pickle_collapse"],
        "letters byte-identical: %s" % snapshot["identical"],
    ]
    return "\n".join(lines)
