"""HTTP status endpoint for a running fleet service.

A :class:`StatusServer` exposes the live ``repro.fleet/v1`` rollup over
plain stdlib HTTP — no web framework, just
:class:`http.server.ThreadingHTTPServer` on a daemon thread:

* ``GET /status`` (or ``/``) — the current fleet rollup as JSON.
* ``GET /healthz`` — ``{"ok": true}`` liveness probe.

Rollups are built through
:meth:`~repro.fleet.service.FleetService.rollup_threadsafe`, which hops
onto the service's event loop so shard registries are never read while a
worker batch is mutating them.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.fleet.service import FleetService


class StatusServer:
    """Serve fleet rollups on ``http://host:port/status``.

    Pass ``port=0`` to bind an ephemeral port (read it back from
    :attr:`port` after :meth:`start`).
    """

    def __init__(
        self, service: FleetService, port: int = 0, host: str = "127.0.0.1"
    ) -> None:
        self.service = service
        self._requested = (host, port)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (0 until :meth:`start`)."""
        return self._server.server_address[1] if self._server else 0

    def start(self) -> "StatusServer":
        if self._server is not None:
            return self
        service = self.service

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0].rstrip("/") or "/status"
                if path == "/healthz":
                    self._reply(200, {"ok": True})
                elif path == "/status":
                    try:
                        self._reply(200, service.rollup_threadsafe())
                    except Exception as exc:  # pragma: no cover - defensive
                        self._reply(500, {"error": str(exc)})
                else:
                    self._reply(404, {"error": "unknown path %r" % self.path})

            def _reply(self, code: int, payload: object) -> None:
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                pass  # keep the monitor's stdout clean

        self._server = ThreadingHTTPServer(self._requested, Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-fleet-status",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
