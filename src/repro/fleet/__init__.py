"""Fleet-scale online monitoring: many vehicle streams, one service.

The package turns the single-stream :class:`~repro.core.online.OnlineMonitor`
into a service: one bounded-memory monitor shard per vehicle stream
(:mod:`repro.fleet.shard`), asyncio ingestion with explicit backpressure
(:mod:`repro.fleet.service`), mergeable fleet-wide metric rollups
(:mod:`repro.fleet.rollup`, format in :mod:`repro.fleet.schema`), a live
HTTP status endpoint (:mod:`repro.fleet.status`), and a log-replay driver
that fans a directory of drive logs across N streams
(:mod:`repro.fleet.replay`).
"""

from repro.fleet.replay import (
    assign_streams,
    interleave,
    load_log_directory,
    replay_directory,
    replay_traces,
    replay_traces_async,
)
from repro.fleet.rollup import fleet_rollup
from repro.fleet.schema import (
    FLEET_SCHEMA_VERSION,
    require_valid_fleet_snapshot,
    validate_fleet_snapshot,
)
from repro.fleet.service import POLICIES, FleetReport, FleetService
from repro.fleet.shard import StreamEvent, StreamShard

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "POLICIES",
    "FleetReport",
    "FleetService",
    "StreamEvent",
    "StreamShard",
    "assign_streams",
    "fleet_rollup",
    "interleave",
    "load_log_directory",
    "replay_directory",
    "replay_traces",
    "replay_traces_async",
    "require_valid_fleet_snapshot",
    "validate_fleet_snapshot",
]
