"""One vehicle stream's monitor shard.

A :class:`StreamShard` pairs a stateful
:class:`~repro.core.online.OnlineMonitor` with a *private*
:class:`~repro.obs.MetricsRegistry`: every hot-path instrument the online
monitor records (``online.chunks``, ``online.late_events``,
``online.buffer_peak_rows``, per-rule evaluation timings, ...) lands in
the shard's own registry, and the fleet rollup merges shard snapshots
with the same associative machinery the parallel campaign uses for
worker-process snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import DEFAULT_PERIOD, MonitorReport, Rule
from repro.core.online import OnlineMonitor
from repro.core.statemachine import StateMachine
from repro.core.violations import Violation
from repro.obs import MetricsRegistry, use_registry

#: One inbox event: (timestamp, signal name, value).
StreamEvent = Tuple[float, str, float]


class StreamShard:
    """A single stream's online monitor plus its metrics registry."""

    def __init__(
        self,
        stream_id: str,
        rules: Sequence[Rule],
        machines: Sequence[StateMachine] = (),
        period: float = DEFAULT_PERIOD,
        min_chunk_rows: int = 50,
        retention: float = 1.0,
        memo: bool = True,
        robustness: bool = False,
        observability: bool = False,
    ) -> None:
        self.stream_id = stream_id
        self.registry = MetricsRegistry()
        self.robustness = robustness
        self.observability = observability
        self._rules = tuple(rules)
        self._machines = tuple(machines)
        self._period = period
        self._observability_hint: Optional[Dict[str, object]] = None
        self.monitor = OnlineMonitor(
            rules,
            machines=machines,
            period=period,
            min_chunk_rows=min_chunk_rows,
            retention=retention,
            memo=memo,
            robustness=robustness,
        )
        self.events = 0
        self.live_violations: List[Violation] = []
        self.report: Optional[MonitorReport] = None

    def feed(self, timestamp: float, signal: str, value: float) -> List[Violation]:
        """Feed one event under this shard's registry."""
        return self.feed_batch([(timestamp, signal, value)])

    def feed_batch(self, events: Sequence[StreamEvent]) -> List[Violation]:
        """Feed a drained inbox batch under one registry install.

        Installing the registry once per batch (not per event) keeps the
        per-event overhead at a deque append plus the chunk-size check.
        """
        fresh: List[Violation] = []
        with use_registry(self.registry):
            for timestamp, signal, value in events:
                fresh.extend(self.monitor.feed(timestamp, signal, value))
        self.events += len(events)
        self.live_violations.extend(fresh)
        return fresh

    def finish(self) -> MonitorReport:
        """Flush the monitor tail and keep the final report."""
        with use_registry(self.registry):
            self.report = self.monitor.finish(trace_name=self.stream_id)
        return self.report

    # ------------------------------------------------------------------

    def _counter(self, name: str) -> int:
        counter = self.registry.counters.get(name)
        return counter.value if counter is not None else 0

    def margins(self) -> Optional[Dict[str, Dict[str, object]]]:
        """Per-rule JSON-safe margin bounds, or ``None`` when the shard
        monitors boolean-only (``robustness=False``).

        Mid-stream the lower bound is ``-inf`` (future rows can be
        arbitrarily violating); after :meth:`finish` the interval equals
        the offline check's rule-level margin.
        """
        if not self.robustness:
            return None
        from repro.core.robustness import float_to_json

        return {
            rule_id: {
                "lower": float_to_json(lower),
                "upper": float_to_json(upper),
            }
            for rule_id, (lower, upper) in sorted(
                self.monitor.robustness_intervals().items()
            )
        }

    def observability_hint(self) -> Optional[Dict[str, object]]:
        """Per-stream bandwidth hint from the symbolic automata pass, or
        ``None`` when the shard was built with ``observability=False``.

        A signal is *droppable* only when every rule on the shard can do
        without it — the per-rule minimal observable sets are unioned
        over the stream's rule set, and any rule the automata pass
        cannot compile conservatively requires all of its signals.
        Computed once (static analysis of the rule set, not of the
        traffic) and cached.
        """
        if not self.observability:
            return None
        if self._observability_hint is None:
            from repro.analysis.automata import compile_rule

            referenced: set = set()
            required: set = set()
            for rule in self._rules:
                compiled = compile_rule(
                    rule, machines=self._machines, period=self._period
                )
                if compiled.observability is None:
                    names = set(rule.signals())
                    referenced |= names
                    required |= names
                else:
                    referenced |= set(compiled.observability.referenced)
                    required |= set(compiled.observability.required)
            droppable = sorted(referenced - required)
            self._observability_hint = {
                "referenced": sorted(referenced),
                "required": sorted(required),
                "droppable": droppable,
                "bandwidth_hint": (
                    len(droppable) / len(referenced) if referenced else 0.0
                ),
            }
        return self._observability_hint

    def snapshot(self) -> Dict[str, object]:
        """This stream's entry in the ``repro.fleet/v1`` rollup."""
        if self.report is not None:
            violations = self.report.violation_count()
            letters: Optional[Dict[str, str]] = self.report.letters()
        else:
            violations = len(self.live_violations)
            letters = None
        return {
            "stream": self.stream_id,
            "events": self.events,
            "chunks": self._counter("online.chunks"),
            "rows_emitted": self._counter("online.rows_emitted"),
            "violations": violations,
            "late_events": self.monitor.late_events,
            "emit_waits": self.monitor.emit_waits,
            "peak_buffer_rows": self.monitor.peak_buffer_rows,
            "max_buffer_rows": self.monitor.max_buffer_rows,
            "decision_latency": self.monitor.decision_latency,
            "finished": self.report is not None,
            "letters": letters,
            "margins": self.margins(),
            "observability": self.observability_hint(),
            "metrics": self.registry.snapshot(),
        }
