"""Fan stored vehicle logs across a fleet of monitor streams.

This is the batch entry point behind ``repro fleet replay``: take a
directory of trace files, assign each to a stream (cycling the traces
when more streams than logs are requested, as when load-testing the
service), and submit every event through a
:class:`~repro.fleet.service.FleetService` in global timestamp order.
The time-ordered interleave is what a real fleet gateway would deliver:
events from different vehicles arrive shuffled together, and each
stream's worker must keep its own monitor consistent regardless of what
the other streams are doing.
"""

from __future__ import annotations

import asyncio
import glob
import heapq
import os
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.monitor import DEFAULT_PERIOD, Rule
from repro.core.statemachine import StateMachine
from repro.errors import TraceError
from repro.fleet.service import FleetReport, FleetService
from repro.logs.format import read_trace
from repro.logs.trace import Trace

#: One fleet event: (timestamp, stream id, signal, value).
FleetEvent = Tuple[float, str, str, float]


def assign_streams(traces: Sequence[Trace], streams: int) -> List[Tuple[str, Trace]]:
    """Pair each of ``streams`` stream ids with a source trace.

    Traces are cycled when there are fewer logs than streams, so eight
    streams over six drive logs is fine; ids embed both the slot and the
    source log (``s03:emergency_brake``) to keep rollups readable.
    """
    if streams < 1:
        raise TraceError("need at least one stream, got %d" % streams)
    if not traces:
        raise TraceError("no traces to replay")
    return [
        ("s%02d:%s" % (slot, traces[slot % len(traces)].name or "trace"), traces[slot % len(traces)])
        for slot in range(streams)
    ]


def _stream_feed(stream_id: str, trace: Trace) -> Iterator[FleetEvent]:
    for timestamp, signal, value in trace.events():
        yield (timestamp, stream_id, signal, value)


def interleave(assignments: Sequence[Tuple[str, Trace]]) -> Iterator[FleetEvent]:
    """Merge per-stream event iterators into one time-ordered feed."""
    feeds = [_stream_feed(stream_id, trace) for stream_id, trace in assignments]
    return heapq.merge(*feeds, key=lambda event: event[0])


async def replay_traces_async(
    traces: Sequence[Trace],
    rules: Sequence[Rule],
    machines: Sequence[StateMachine] = (),
    streams: int = 8,
    period: float = DEFAULT_PERIOD,
    min_chunk_rows: int = 50,
    retention: float = 1.0,
    memo: bool = True,
    inbox_events: int = 1024,
    policy: str = "block",
    status_port: Optional[int] = None,
    robustness: bool = False,
    observability: bool = False,
) -> FleetReport:
    """Replay ``traces`` across ``streams`` monitor streams.

    Optionally serves live rollups on ``status_port`` for the duration
    of the replay (0 binds an ephemeral port).
    """
    service = FleetService(
        rules,
        machines=machines,
        period=period,
        min_chunk_rows=min_chunk_rows,
        retention=retention,
        memo=memo,
        inbox_events=inbox_events,
        policy=policy,
        robustness=robustness,
        observability=observability,
    )
    status = None
    if status_port is not None:
        from repro.fleet.status import StatusServer

        status = StatusServer(service, port=status_port).start()
    try:
        for timestamp, stream_id, signal, value in interleave(
            assign_streams(traces, streams)
        ):
            await service.submit(stream_id, timestamp, signal, value)
        return await service.close()
    finally:
        if status is not None:
            status.stop()


def replay_traces(traces: Sequence[Trace], rules: Sequence[Rule], **kwargs: object) -> FleetReport:
    """Synchronous wrapper around :func:`replay_traces_async`."""
    return asyncio.run(replay_traces_async(traces, rules, **kwargs))


def load_log_directory(path: str, pattern: str = "*.csv") -> List[Trace]:
    """Read every trace file in ``path`` matching ``pattern``, sorted."""
    files = sorted(glob.glob(os.path.join(path, pattern)))
    if not files:
        raise TraceError(
            "no %r trace files under %s" % (pattern, path)
        )
    traces = []
    for filename in files:
        trace = read_trace(filename)
        if not trace.name:
            trace.name = os.path.splitext(os.path.basename(filename))[0]
        traces.append(trace)
    return traces


def replay_directory(
    path: str,
    rules: Sequence[Rule],
    pattern: str = "*.csv",
    **kwargs: object,
) -> FleetReport:
    """Replay every log under ``path`` across a fleet of streams."""
    return replay_traces(load_log_directory(path, pattern), rules, **kwargs)
