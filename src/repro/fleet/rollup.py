"""Fleet-wide metrics rollup.

Each :class:`~repro.fleet.shard.StreamShard` snapshots its private
registry; :func:`fleet_rollup` merges those snapshots (plus the
service's own backpressure counters) with
:meth:`~repro.obs.MetricsRegistry.merge_snapshot` — the associative,
order-independent merge the parallel campaign already relies on — and
wraps them in the ``repro.fleet/v1`` document described in
:mod:`repro.fleet.schema`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from repro.fleet.schema import FLEET_SCHEMA_VERSION
from repro.fleet.shard import StreamShard
from repro.obs import MetricsRegistry


def _merged_counter(registry: MetricsRegistry, name: str) -> int:
    counter = registry.counters.get(name)
    return counter.value if counter is not None else 0


def _fleet_margins(
    shards: Iterable[StreamShard],
) -> Optional[Dict[str, Dict[str, object]]]:
    """Fleet-wide per-rule worst margin: the pointwise minimum of every
    robustness-enabled shard's interval (order-independent).  ``None``
    when no shard streams margins."""
    from repro.core.robustness import float_to_json

    worst: Dict[str, Dict[str, float]] = {}
    for shard in shards:
        for rule_id, (lower, upper) in shard.monitor.robustness_intervals().items():
            entry = worst.setdefault(
                rule_id, {"lower": math.inf, "upper": math.inf}
            )
            entry["lower"] = min(entry["lower"], lower)
            entry["upper"] = min(entry["upper"], upper)
    if not worst:
        return None
    return {
        rule_id: {
            "lower": float_to_json(entry["lower"]),
            "upper": float_to_json(entry["upper"]),
        }
        for rule_id, entry in sorted(worst.items())
    }


def _fleet_observability(
    entries: Iterable[Dict[str, object]],
) -> Optional[Dict[str, object]]:
    """Fleet-wide bandwidth hint: a signal is droppable only when *no*
    reporting stream requires it (order-independent union).  ``None``
    when no shard runs the observability pass."""
    referenced: set = set()
    required: set = set()
    reporting = False
    for entry in entries:
        block = entry.get("observability")
        if block is None:
            continue
        reporting = True
        referenced |= set(block["referenced"])
        required |= set(block["required"])
    if not reporting:
        return None
    droppable = sorted(referenced - required)
    return {
        "referenced": sorted(referenced),
        "required": sorted(required),
        "droppable": droppable,
        "bandwidth_hint": (
            len(droppable) / len(referenced) if referenced else 0.0
        ),
    }


def fleet_rollup(
    shards: Iterable[StreamShard],
    service_registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Build a ``repro.fleet/v1`` rollup over ``shards``.

    ``service_registry`` carries service-level instruments (submission
    and backpressure counters); its snapshot is folded into the
    fleet-level ``metrics`` object alongside every shard's.
    """
    streams: Dict[str, object] = {}
    merged = MetricsRegistry()
    events = violations = late = peak = 0
    margin_shards = []
    for shard in shards:
        entry = shard.snapshot()
        streams[shard.stream_id] = entry
        merged.merge_snapshot(entry["metrics"])
        events += entry["events"]
        violations += entry["violations"]
        late += entry["late_events"]
        peak = max(peak, entry["peak_buffer_rows"])
        if entry["margins"] is not None:
            margin_shards.append(shard)
    if service_registry is not None:
        merged.merge_snapshot(service_registry.snapshot())
    return {
        "schema": FLEET_SCHEMA_VERSION,
        "streams": streams,
        "fleet": {
            "streams": len(streams),
            "events": events,
            "chunks": _merged_counter(merged, "online.chunks"),
            "violations": violations,
            "late_events": late,
            "peak_buffer_rows": peak,
            "margins": _fleet_margins(margin_shards),
            "observability": _fleet_observability(streams.values()),
            "backpressure": {
                "dropped": _merged_counter(merged, "fleet.backpressure_dropped"),
                "blocked": _merged_counter(merged, "fleet.backpressure_blocked"),
            },
            "metrics": merged.snapshot(),
        },
    }
