"""The fleet rollup JSON format (``repro.fleet/v1``) — docs and validation.

A rollup is one JSON object::

    {
      "schema": "repro.fleet/v1",
      "streams": {
        "<stream id>": {
          "stream": "<stream id>",
          "events": <int>,                # events fed to the shard
          "chunks": <int>,                # chunk emissions so far
          "rows_emitted": <int>,
          "violations": <int>,
          "late_events": <int>,           # dropped behind the frontier
          "emit_waits": <int>,            # emissions deferred on missing signals
          "peak_buffer_rows": <int>,      # fullest per-signal buffer seen
          "max_buffer_rows": <int>,       # the bounded-memory invariant
          "decision_latency": <number>,   # worst-case verdict delay, seconds
          "finished": <bool>,
          "letters": {"<rule id>": "S"|"V", ...} | null,   # null while live
          "margins": {"<rule id>": {"lower": <json float>,
                                    "upper": <json float>}, ...} | null,
          "observability": {"referenced": [<signal>, ...],
                            "required": [<signal>, ...],
                            "droppable": [<signal>, ...],
                            "bandwidth_hint": <number in [0, 1]>} | null,
          "metrics": <repro.obs/v1 snapshot>
        }, ...
      },
      "fleet": {
        "streams": <int>,
        "events": <int>,
        "chunks": <int>,
        "violations": <int>,
        "late_events": <int>,
        "peak_buffer_rows": <int>,        # max over streams
        "margins": {...} | null,          # per-rule pointwise min over streams
        "observability": {...} | null,    # union over reporting streams
        "backpressure": {"dropped": <int>, "blocked": <int>},
        "metrics": <repro.obs/v1 snapshot> # all shards + service, merged
      }
    }

Per-stream ``margins`` is null unless the shard runs with
``robustness=True``; bounds are JSON-safe floats (``"-inf"``/``"inf"``
strings for the infinities, per ``repro.core.robustness.float_to_json``)
with ``lower <= upper``.  The fleet-level block is the per-rule
pointwise minimum over reporting streams — the fleet's worst margin.

Per-stream ``observability`` is null unless the shard runs with
``observability=True``: the symbolic automata pass's minimal
observable-signal set unioned over the shard's rules
(``required`` and ``droppable`` partition ``referenced``;
``bandwidth_hint`` is the droppable fraction).  The fleet-level block
unions the reporting streams — a signal is fleet-droppable only when no
stream requires it.

Per-stream ``metrics`` are full ``repro.obs/v1`` snapshots (validated by
:func:`repro.obs.validate_snapshot`); the fleet-level ``metrics`` object
is their associative merge plus the service's own counters, so totals
are independent of the order streams were rolled up in.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs import validate_snapshot
from repro.obs.schema import _is_count, _is_number

#: Rollup format identifier; bump when the JSON layout changes.
FLEET_SCHEMA_VERSION = "repro.fleet/v1"

#: Counter fields every per-stream entry must carry.
_STREAM_COUNTS = (
    "events",
    "chunks",
    "rows_emitted",
    "violations",
    "late_events",
    "emit_waits",
    "peak_buffer_rows",
    "max_buffer_rows",
)

#: Counter fields the fleet-level section must carry.
_FLEET_COUNTS = (
    "streams",
    "events",
    "chunks",
    "violations",
    "late_events",
    "peak_buffer_rows",
)


def validate_fleet_snapshot(snapshot: object) -> List[str]:
    """All the ways ``snapshot`` fails to be a valid fleet rollup.

    Returns an empty list when the document conforms to the
    ``repro.fleet/v1`` format described in the module docstring.
    """
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return ["rollup must be a JSON object, got %s" % type(snapshot).__name__]
    if snapshot.get("schema") != FLEET_SCHEMA_VERSION:
        problems.append(
            "schema must be %r, got %r"
            % (FLEET_SCHEMA_VERSION, snapshot.get("schema"))
        )
    streams = snapshot.get("streams")
    if not isinstance(streams, dict):
        problems.append("missing or non-object section 'streams'")
    fleet = snapshot.get("fleet")
    if not isinstance(fleet, dict):
        problems.append("missing or non-object section 'fleet'")
    if problems:
        return problems

    for stream_id, entry in streams.items():
        problems.extend(_validate_stream(stream_id, entry))

    for key in _FLEET_COUNTS:
        if not _is_count(fleet.get(key)):
            problems.append(
                "fleet %r must be a non-negative integer, got %r"
                % (key, fleet.get(key))
            )
    if _is_count(fleet.get("streams")) and fleet["streams"] != len(streams):
        problems.append(
            "fleet 'streams' is %d but %d stream entries are present"
            % (fleet["streams"], len(streams))
        )
    problems.extend(_validate_margins("fleet", fleet.get("margins")))
    problems.extend(
        _validate_observability("fleet", fleet.get("observability"))
    )
    backpressure = fleet.get("backpressure")
    if not isinstance(backpressure, dict):
        problems.append("fleet needs a 'backpressure' object")
    else:
        for key in ("dropped", "blocked"):
            if not _is_count(backpressure.get(key)):
                problems.append(
                    "backpressure %r must be a non-negative integer, got %r"
                    % (key, backpressure.get(key))
                )
    problems.extend(
        "fleet metrics: %s" % problem
        for problem in validate_snapshot(fleet.get("metrics"))
    )
    return problems


def _validate_margins(where: str, margins: object) -> List[str]:
    """``margins`` blocks are null or per-rule {lower, upper} bounds."""
    from repro.core.robustness import float_from_json

    if margins is None:
        return []
    if not isinstance(margins, dict):
        return ["%s 'margins' must be null or an object" % where]
    problems: List[str] = []
    for rule_id, bounds in margins.items():
        owner = "%s margins %r" % (where, rule_id)
        if not isinstance(rule_id, str) or not isinstance(bounds, dict):
            problems.append("%s must map rule ids to bound objects" % owner)
            continue
        try:
            lower = float_from_json(bounds.get("lower"))
            upper = float_from_json(bounds.get("upper"))
        except ValueError as error:
            problems.append("%s: %s" % (owner, error))
            continue
        if lower is None or upper is None:
            problems.append("%s needs 'lower' and 'upper' bounds" % owner)
        elif lower > upper:
            problems.append(
                "%s bounds are inverted: [%r, %r]" % (owner, lower, upper)
            )
    return problems


def _validate_observability(where: str, block: object) -> List[str]:
    """``observability`` blocks are null or the signal-set partition."""
    if block is None:
        return []
    if not isinstance(block, dict):
        return ["%s 'observability' must be null or an object" % where]
    problems: List[str] = []
    sets: Dict[str, set] = {}
    for key in ("referenced", "required", "droppable"):
        names = block.get(key)
        if not (
            isinstance(names, list)
            and all(isinstance(name, str) for name in names)
        ):
            problems.append(
                "%s observability %r must be a string array" % (where, key)
            )
        else:
            sets[key] = set(names)
    if (
        len(sets) == 3
        and sets["required"] | sets["droppable"] != sets["referenced"]
    ):
        problems.append(
            "%s observability sets do not partition 'referenced'" % where
        )
    hint = block.get("bandwidth_hint")
    if not _is_number(hint) or not 0.0 <= hint <= 1.0:
        problems.append(
            "%s observability 'bandwidth_hint' must be a number in [0, 1]"
            % where
        )
    return problems


def _validate_stream(stream_id: str, entry: object) -> List[str]:
    where = "stream %r" % stream_id
    if not isinstance(entry, dict):
        return ["%s must be an object" % where]
    problems: List[str] = []
    if entry.get("stream") != stream_id:
        problems.append(
            "%s 'stream' field is %r (must echo its key)"
            % (where, entry.get("stream"))
        )
    for key in _STREAM_COUNTS:
        if not _is_count(entry.get(key)):
            problems.append(
                "%s %r must be a non-negative integer, got %r"
                % (where, key, entry.get(key))
            )
    if not _is_number(entry.get("decision_latency")) or entry["decision_latency"] <= 0:
        problems.append("%s needs a positive numeric 'decision_latency'" % where)
    if not isinstance(entry.get("finished"), bool):
        problems.append("%s needs a boolean 'finished'" % where)
    letters = entry.get("letters")
    if letters is not None:
        if not isinstance(letters, dict) or not all(
            isinstance(rule_id, str) and letter in ("S", "V")
            for rule_id, letter in letters.items()
        ):
            problems.append(
                "%s 'letters' must be null or an object of 'S'/'V'" % where
            )
    problems.extend(_validate_margins(where, entry.get("margins")))
    problems.extend(
        _validate_observability(where, entry.get("observability"))
    )
    problems.extend(
        "%s metrics: %s" % (where, problem)
        for problem in validate_snapshot(entry.get("metrics"))
    )
    return problems


def require_valid_fleet_snapshot(snapshot: object) -> Dict[str, object]:
    """Validate and return ``snapshot``; raise ``ValueError`` otherwise."""
    problems = validate_fleet_snapshot(snapshot)
    if problems:
        raise ValueError("invalid fleet rollup: %s" % "; ".join(problems))
    return snapshot  # type: ignore[return-value]
