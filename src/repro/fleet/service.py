"""The fleet monitoring service — many streams, one process.

A :class:`FleetService` runs one stateful
:class:`~repro.fleet.shard.StreamShard` per vehicle stream.  Ingestion is
asynchronous: :meth:`FleetService.submit` enqueues an event into the
stream's **bounded inbox** (an :class:`asyncio.Queue`) and a per-stream
worker task drains the inbox in batches, feeding the shard's online
monitor.  Monitor evaluation is CPU-bound and runs inline on the event
loop — batching is what keeps the interleave efficient: each worker
turn evaluates up to ``batch_events`` events (at most a few monitor
chunks) before yielding to the other streams.

Backpressure
------------

Inboxes are bounded (``inbox_events``); what happens when one fills is
the service's explicit, counted policy:

* ``"block"`` (default) — ``submit`` awaits free space.  The await *is*
  the backpressure: a producer outrunning its stream's monitor is slowed
  to the monitor's pace.  Each submit that found the inbox full first
  increments ``fleet.backpressure_blocked``.
* ``"drop"`` — a full inbox drops the incoming event and increments
  ``fleet.backpressure_dropped``.  The shard's monitor then simply never
  sees the event; for the monitor this is indistinguishable from frame
  loss on the bus.

Either way the service's memory stays bounded: per stream, at most
``inbox_events`` queued events plus the shard monitor's own
``max_buffer_rows``-bounded buffer.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.monitor import DEFAULT_PERIOD, MonitorReport, Rule
from repro.core.statemachine import StateMachine
from repro.fleet.rollup import fleet_rollup
from repro.fleet.shard import StreamShard
from repro.obs import MetricsRegistry

#: Inbox sentinel telling a worker its stream is complete.
_EOF = object()

#: Allowed backpressure policies.
POLICIES = ("block", "drop")


@dataclass
class FleetReport:
    """Final state of a drained fleet: per-stream reports plus rollup."""

    reports: Dict[str, MonitorReport] = field(default_factory=dict)
    rollup: Dict[str, object] = field(default_factory=dict)

    def violated_streams(self) -> List[str]:
        """Stream ids with at least one post-filter violation."""
        return [
            stream_id
            for stream_id, report in self.reports.items()
            if report.violated_rules()
        ]

    def summary(self) -> str:
        """Per-stream table: events, chunks, peak buffer, letters."""
        fleet = self.rollup.get("fleet", {})
        lines = [
            "fleet: %d stream(s), %d event(s), %d chunk(s), %d violation(s)"
            % (
                fleet.get("streams", len(self.reports)),
                fleet.get("events", 0),
                fleet.get("chunks", 0),
                fleet.get("violations", 0),
            ),
            "%-28s %10s %8s %10s %8s  %s"
            % ("stream", "events", "chunks", "peak rows", "late", "letters"),
        ]
        streams = self.rollup.get("streams", {})
        for stream_id in sorted(streams):
            entry = streams[stream_id]
            letters = entry.get("letters") or {}
            lines.append(
                "%-28s %10d %8d %10d %8d  %s"
                % (
                    stream_id,
                    entry.get("events", 0),
                    entry.get("chunks", 0),
                    entry.get("peak_buffer_rows", 0),
                    entry.get("late_events", 0),
                    "".join(letters[rule_id] for rule_id in sorted(letters)),
                )
            )
        backpressure = fleet.get("backpressure", {})
        if backpressure.get("dropped") or backpressure.get("blocked"):
            lines.append(
                "backpressure: %d dropped, %d blocked submit(s)"
                % (backpressure.get("dropped", 0), backpressure.get("blocked", 0))
            )
        for stream_id in sorted(self.reports):
            for note in self.reports[stream_id].notes:
                lines.append("note [%s]: %s" % (stream_id, note))
        return "\n".join(lines)


class FleetService:
    """Sharded online monitoring over many concurrent streams.

    Create the service inside a running event loop (workers are spawned
    lazily per stream), ``await submit(...)`` for every bus event, then
    ``await close()`` to drain the inboxes, flush every monitor, and get
    the :class:`FleetReport`.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        machines: Sequence[StateMachine] = (),
        period: float = DEFAULT_PERIOD,
        min_chunk_rows: int = 50,
        retention: float = 1.0,
        memo: bool = True,
        inbox_events: int = 1024,
        policy: str = "block",
        batch_events: int = 256,
        robustness: bool = False,
        observability: bool = False,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                "backpressure policy must be one of %s, got %r"
                % ("/".join(POLICIES), policy)
            )
        if inbox_events < 1:
            raise ValueError("inbox_events must be >= 1, got %d" % inbox_events)
        self.rules = list(rules)
        self.machines = list(machines)
        self.period = period
        self.min_chunk_rows = min_chunk_rows
        self.retention = retention
        self.memo = memo
        self.inbox_events = inbox_events
        self.policy = policy
        self.batch_events = max(1, batch_events)
        #: Also stream per-rule robustness margins (each shard's rollup
        #: entry gains a ``margins`` block — see ``StreamShard.margins``).
        self.robustness = robustness
        #: Attach the automata pass's minimal-observable-set bandwidth
        #: hint to every shard (``StreamShard.observability_hint``).
        self.observability = observability
        #: Service-level instruments (submissions, backpressure, batches).
        self.registry = MetricsRegistry()
        self._shards: Dict[str, StreamShard] = {}
        self._inboxes: Dict[str, asyncio.Queue] = {}
        self._workers: Dict[str, asyncio.Task] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    @property
    def stream_ids(self) -> List[str]:
        """Ids of every stream seen so far, sorted."""
        return sorted(self._shards)

    def shard(self, stream_id: str) -> StreamShard:
        """The shard for ``stream_id`` (created on first use)."""
        shard = self._shards.get(stream_id)
        if shard is None:
            shard = self._shards[stream_id] = StreamShard(
                stream_id,
                self.rules,
                machines=self.machines,
                period=self.period,
                min_chunk_rows=self.min_chunk_rows,
                retention=self.retention,
                memo=self.memo,
                robustness=self.robustness,
                observability=self.observability,
            )
            self.registry.counter("fleet.streams_opened").inc()
        return shard

    def _ensure_worker(self, stream_id: str) -> asyncio.Queue:
        inbox = self._inboxes.get(stream_id)
        if inbox is None:
            self._loop = asyncio.get_running_loop()
            shard = self.shard(stream_id)
            inbox = self._inboxes[stream_id] = asyncio.Queue(
                maxsize=self.inbox_events
            )
            self._workers[stream_id] = self._loop.create_task(
                self._worker(inbox, shard)
            )
        return inbox

    async def submit(
        self, stream_id: str, timestamp: float, signal: str, value: float
    ) -> None:
        """Enqueue one bus event for ``stream_id``.

        Applies the backpressure policy when the stream's inbox is full:
        ``block`` awaits space, ``drop`` discards the event (counted).
        """
        if self._closed:
            raise RuntimeError("fleet service already closed")
        inbox = self._ensure_worker(stream_id)
        event = (timestamp, signal, value)
        self.registry.counter("fleet.events_submitted").inc()
        if self.policy == "drop":
            try:
                inbox.put_nowait(event)
            except asyncio.QueueFull:
                self.registry.counter("fleet.backpressure_dropped").inc()
            return
        if inbox.full():
            self.registry.counter("fleet.backpressure_blocked").inc()
        await inbox.put(event)

    async def _worker(self, inbox: asyncio.Queue, shard: StreamShard) -> None:
        """Drain one stream's inbox in batches until its EOF sentinel."""
        while True:
            event = await inbox.get()
            stop = event is _EOF
            batch = []
            if not stop:
                batch.append(event)
                while len(batch) < self.batch_events:
                    try:
                        queued = inbox.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if queued is _EOF:
                        stop = True
                        break
                    batch.append(queued)
            if batch:
                shard.feed_batch(batch)
                self.registry.counter("fleet.batches").inc()
            if stop:
                return
            # Yield so the other streams' workers interleave fairly even
            # when this inbox never runs dry.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Rollup / shutdown
    # ------------------------------------------------------------------

    def rollup(self) -> Dict[str, object]:
        """A live ``repro.fleet/v1`` rollup of every shard.

        Only safe from the service's own event loop thread; other
        threads (the status endpoint) must use
        :meth:`rollup_threadsafe`.
        """
        return fleet_rollup(self._shards.values(), self.registry)

    def rollup_threadsafe(self, timeout: float = 5.0) -> Dict[str, object]:
        """Build a rollup from any thread.

        Schedules the build on the service's event loop (between worker
        batches), so shard registries are never read mid-mutation.
        Falls back to a direct build when no loop is running (the
        service is idle or already closed).
        """
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(self._rollup_async(), loop)
            return future.result(timeout=timeout)
        return self.rollup()

    async def _rollup_async(self) -> Dict[str, object]:
        return self.rollup()

    async def close(self) -> FleetReport:
        """Drain every inbox, flush every monitor, return the report."""
        if self._closed:
            raise RuntimeError("fleet service already closed")
        self._closed = True
        for inbox in self._inboxes.values():
            await inbox.put(_EOF)
        if self._workers:
            await asyncio.gather(*self._workers.values())
        reports = {
            stream_id: shard.finish()
            for stream_id, shard in sorted(self._shards.items())
        }
        return FleetReport(reports=reports, rollup=self.rollup())
