"""repro — monitor-based test oracles for cyber-physical systems.

A full reproduction of Kane, Fuhrman and Koopman, *"Monitor Based Oracles
for Cyber-Physical System Testing: Practical Experience Report"* (DSN
2014): the bolt-on passive runtime monitor and its specification language
(``repro.core``), the paper's seven safety rules (``repro.rules``), and
every substrate the experiments need — a CAN network (``repro.can``), a
longitudinal vehicle simulator (``repro.vehicle``), the non-robust FSRACC
feature under test (``repro.acc``), a dSPACE-style HIL testbench
(``repro.hil``), trace/log handling (``repro.logs``), and the robustness
testing campaign that regenerates Table I (``repro.testing``).

Quick start::

    from repro import Monitor, TestOracle, paper_rules
    from repro.hil import HilSimulator
    from repro.vehicle import steady_follow

    simulator = HilSimulator(steady_follow(60.0))
    result = simulator.run()
    oracle = TestOracle(Monitor(paper_rules()))
    print(oracle.judge(result.trace).explain())
"""

from repro.core import (
    Monitor,
    MonitorReport,
    OracleResult,
    OracleVerdict,
    Rule,
    RuleResult,
    StateMachine,
    TestOracle,
    Verdict,
    Violation,
    WarmupSpec,
    parse_expr,
    parse_formula,
)
from repro.errors import (
    EvaluationError,
    InjectionError,
    ReproError,
    SimulationError,
    SpecError,
    TraceError,
)
from repro.logs import Trace, TraceView, read_trace, write_trace
from repro.rules import RULE_IDS, paper_rules, rules_by_id

__version__ = "1.0.0"

__all__ = [
    "EvaluationError",
    "InjectionError",
    "Monitor",
    "MonitorReport",
    "OracleResult",
    "OracleVerdict",
    "RULE_IDS",
    "ReproError",
    "Rule",
    "RuleResult",
    "SimulationError",
    "SpecError",
    "StateMachine",
    "TestOracle",
    "Trace",
    "TraceError",
    "TraceView",
    "Verdict",
    "Violation",
    "WarmupSpec",
    "__version__",
    "paper_rules",
    "parse_expr",
    "parse_formula",
    "read_trace",
    "rules_by_id",
    "write_trace",
]
