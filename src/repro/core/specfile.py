"""Specification files — rule sets as plain text.

The paper's workflow (experts writing rules, relaxing them as false
positives are triaged) wants rules to live in reviewable text files, not
code.  A ``.rules`` file holds rule and machine sections:

.. code-block:: ini

    # FSRACC safety specification
    [rule rule5]
    name = Requested decel is negative
    formula = BrakeRequested -> RequestedDecel <= 0
    gate = ACCEnabled
    settle = 500ms
    filter = persistence 2
    description = A requested deceleration must be a deceleration.

    [rule cutin]
    formula = TargetRange < 20 -> not rising(RequestedTorque, 5)
    gate = ACCEnabled and VehicleAhead
    warmup = VehicleAhead != 0 and prev(VehicleAhead) == 0 : 2s
    filter = magnitude delta(RequestedTorque) 60
    filter = duration 200ms

    [machine acc]
    states = idle, engaged
    initial = idle
    transition = idle -> engaged : ACCEnabled
    transition = engaged -> idle : not ACCEnabled

Repeated ``filter`` and ``transition`` keys accumulate.  Durations accept
``s``/``ms`` suffixes (bare numbers are seconds).
"""

from __future__ import annotations

import io
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Tuple, Union

from repro.core.intent import (
    DurationFilter,
    IntentFilter,
    MagnitudeFilter,
    PersistenceFilter,
)
from repro.core.monitor import Rule
from repro.core.statemachine import StateMachine
from repro.core.warmup import WarmupSpec
from repro.errors import SpecError

PathOrFile = Union[str, TextIO]

_SECTION_RE = re.compile(r"^\[(rule|machine)\s+([A-Za-z_][A-Za-z_0-9]*)\]$")


@dataclass(frozen=True)
class SpecOrigin:
    """Where a rule or machine section starts in its source text."""

    source: str
    line: int

    def __str__(self) -> str:
        return "%s:%d" % (self.source, self.line)


@dataclass
class SpecSet:
    """A loaded specification: rules plus their state machines.

    ``origins`` maps ``"rule:<id>"`` / ``"machine:<name>"`` to the
    :class:`SpecOrigin` of the section header, so lint diagnostics and
    error messages can point at ``file:line``.  Hand-built spec sets may
    leave it empty.
    """

    rules: List[Rule] = field(default_factory=list)
    machines: List[StateMachine] = field(default_factory=list)
    origins: Dict[str, SpecOrigin] = field(default_factory=dict)

    def monitor(self, period: float = 0.02):
        """Build a monitor from this specification."""
        from repro.core.monitor import Monitor

        return Monitor(self.rules, machines=self.machines, period=period)


def parse_duration(text: str) -> float:
    """Parse ``500ms`` / ``2s`` / ``1.5`` (seconds) into seconds."""
    text = text.strip()
    match = re.fullmatch(r"([0-9.eE+-]+)\s*(ms|s)?", text)
    if not match:
        raise SpecError("cannot parse duration %r" % text)
    try:
        value = float(match.group(1))
    except ValueError:
        raise SpecError("cannot parse duration %r" % text) from None
    if match.group(2) == "ms":
        value /= 1000.0
    return value


def load_specs(
    source: PathOrFile,
    strict: bool = False,
    database=None,
) -> SpecSet:
    """Load a ``.rules`` file (path or file object).

    With ``strict=True`` the loaded set is run through the static
    analyzer (:mod:`repro.analysis`) and any error-level finding raises
    :class:`~repro.errors.SpecError`.  Passing the CAN ``database``
    enables the signal-resolution and range checks.
    """
    if hasattr(source, "read"):
        name = getattr(source, "name", "<stream>")
        specs = _parse(source, str(name))  # type: ignore[arg-type]
    else:
        with open(source, "r", encoding="utf-8") as handle:
            specs = _parse(handle, str(source))
    if strict:
        _require_lint_clean(specs, database)
    return specs


def loads_specs(text: str, strict: bool = False, database=None) -> SpecSet:
    """Load a specification from a string (see :func:`load_specs`)."""
    specs = _parse(io.StringIO(text), "<string>")
    if strict:
        _require_lint_clean(specs, database)
    return specs


def _require_lint_clean(specs: SpecSet, database) -> None:
    """Raise :class:`SpecError` when the analyzer finds errors."""
    from repro.analysis import Severity, lint_specs

    errors = [
        diagnostic
        for diagnostic in lint_specs(specs, database=database)
        if diagnostic.severity is Severity.ERROR
    ]
    if errors:
        raise SpecError(
            "specification failed strict lint with %d error(s):\n%s"
            % (len(errors), "\n".join(d.format() for d in errors))
        )


def dump_specs(specs: SpecSet, destination: PathOrFile) -> None:
    """Write a specification set back to text.

    Filters serialize for the three built-in kinds; custom filter classes
    are rejected (they have no textual form).
    """
    if hasattr(destination, "write"):
        _write(specs, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        _write(specs, handle)


def dumps_specs(specs: SpecSet) -> str:
    """Serialize a specification set to a string."""
    buffer = io.StringIO()
    _write(specs, buffer)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------


def _parse(handle: TextIO, source: str = "<string>") -> SpecSet:
    specs = SpecSet()
    section: Optional[Tuple[str, str]] = None
    section_line = 0
    fields: Dict[str, List[str]] = {}

    def flush() -> None:
        if section is None:
            return
        kind, name = section
        try:
            if kind == "rule":
                specs.rules.append(_build_rule(name, fields))
            else:
                specs.machines.append(_build_machine(name, fields))
        except SpecError as exc:
            raise SpecError(
                "in [%s %s] (starting at line %d): %s"
                % (kind, name, section_line, exc)
            ) from None
        specs.origins["%s:%s" % (kind, name)] = SpecOrigin(
            source, section_line
        )

    for line_number, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SECTION_RE.match(line)
        if match:
            flush()
            section = (match.group(1), match.group(2))
            key = "%s:%s" % section
            if key in specs.origins:
                raise SpecError(
                    "line %d: duplicate [%s %s] section (first defined at "
                    "line %d)"
                    % (line_number, section[0], section[1],
                       specs.origins[key].line)
                )
            section_line = line_number
            fields = {}
            continue
        if section is None:
            raise SpecError(
                "line %d: content before any [rule ...] or [machine ...] "
                "section" % line_number
            )
        if "=" not in line:
            raise SpecError("line %d: expected 'key = value'" % line_number)
        key, _, value = line.partition("=")
        fields.setdefault(key.strip(), []).append(value.strip())
    flush()
    return specs


def _single(name: str, fields: Dict[str, List[str]], key: str) -> Optional[str]:
    values = fields.pop(key, [])
    if len(values) > 1:
        raise SpecError("%s: key %r given %d times" % (name, key, len(values)))
    return values[0] if values else None


def _build_rule(name: str, fields: Dict[str, List[str]]) -> Rule:
    formula = _single(name, fields, "formula")
    if formula is None:
        raise SpecError("rule %s: missing formula" % name)
    title = _single(name, fields, "name") or name
    gate = _single(name, fields, "gate")
    settle_text = _single(name, fields, "settle")
    warmup_text = _single(name, fields, "warmup")
    description = _single(name, fields, "description") or ""

    warmup = None
    if warmup_text is not None:
        trigger, sep, duration = warmup_text.rpartition(":")
        if not sep:
            raise SpecError(
                "rule %s: warmup must be 'trigger : duration'" % name
            )
        warmup = WarmupSpec.parse(trigger.strip(), parse_duration(duration))

    filters = tuple(
        _build_filter(name, text) for text in fields.pop("filter", [])
    )
    if fields:
        raise SpecError(
            "rule %s: unknown keys: %s" % (name, ", ".join(sorted(fields)))
        )
    return Rule.from_text(
        rule_id=name,
        name=title,
        formula=formula,
        gate=gate,
        warmup=warmup,
        initial_settle=parse_duration(settle_text) if settle_text else 0.0,
        filters=filters,
        description=description,
    )


def _build_filter(rule_name: str, text: str) -> IntentFilter:
    parts = text.split()
    if not parts:
        raise SpecError("rule %s: empty filter" % rule_name)
    kind = parts[0]
    if kind == "duration" and len(parts) == 2:
        return DurationFilter(parse_duration(parts[1]))
    if kind == "persistence" and len(parts) == 2:
        try:
            return PersistenceFilter(int(parts[1]))
        except ValueError:
            raise SpecError(
                "rule %s: persistence needs an integer row count" % rule_name
            ) from None
    if kind == "magnitude" and len(parts) >= 3:
        expression = " ".join(parts[1:-1])
        try:
            threshold = float(parts[-1])
        except ValueError:
            raise SpecError(
                "rule %s: magnitude needs a numeric threshold" % rule_name
            ) from None
        return MagnitudeFilter(expression, threshold)
    raise SpecError(
        "rule %s: cannot parse filter %r (expected 'duration T', "
        "'persistence N', or 'magnitude EXPR T')" % (rule_name, text)
    )


def _build_machine(name: str, fields: Dict[str, List[str]]) -> StateMachine:
    states_text = _single(name, fields, "states")
    initial = _single(name, fields, "initial")
    if states_text is None or initial is None:
        raise SpecError("machine %s: needs 'states' and 'initial'" % name)
    states = tuple(state.strip() for state in states_text.split(","))
    transitions = []
    for text in fields.pop("transition", []):
        arrow, sep, guard = text.partition(":")
        if not sep:
            raise SpecError(
                "machine %s: transition must be 'src -> dst : guard'" % name
            )
        source, arrow_sep, target = arrow.partition("->")
        if not arrow_sep:
            raise SpecError(
                "machine %s: transition must be 'src -> dst : guard'" % name
            )
        transitions.append(
            (source.strip(), target.strip(), guard.strip())
        )
    if fields:
        raise SpecError(
            "machine %s: unknown keys: %s" % (name, ", ".join(sorted(fields)))
        )
    return StateMachine(name, states, initial, transitions)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


def _write(specs: SpecSet, handle: TextIO) -> None:
    handle.write("# repro specification set\n")
    for machine in specs.machines:
        handle.write("\n[machine %s]\n" % machine.name)
        handle.write("states = %s\n" % ", ".join(machine.states))
        handle.write("initial = %s\n" % machine.initial)
        for transition in machine.transitions:
            handle.write(
                "transition = %s -> %s : %s\n"
                % (transition.source, transition.target, transition.guard)
            )
    for rule in specs.rules:
        handle.write("\n[rule %s]\n" % rule.rule_id)
        if rule.name != rule.rule_id:
            handle.write("name = %s\n" % rule.name)
        handle.write("formula = %s\n" % rule.formula)
        if rule.gate is not None:
            handle.write("gate = %s\n" % rule.gate)
        if rule.initial_settle:
            handle.write("settle = %r\n" % rule.initial_settle)
        if rule.warmup is not None:
            handle.write(
                "warmup = %s : %r\n" % (rule.warmup.trigger, rule.warmup.duration)
            )
        for intent_filter in rule.filters:
            handle.write("filter = %s\n" % _filter_text(rule, intent_filter))
        if rule.description:
            handle.write("description = %s\n" % rule.description)


def _filter_text(rule: Rule, intent_filter: IntentFilter) -> str:
    if isinstance(intent_filter, DurationFilter):
        return "duration %r" % intent_filter.min_duration
    if isinstance(intent_filter, PersistenceFilter):
        return "persistence %d" % intent_filter.min_rows
    if isinstance(intent_filter, MagnitudeFilter):
        return "magnitude %s %r" % (
            intent_filter.expression,
            intent_filter.threshold,
        )
    raise SpecError(
        "rule %s: filter %r has no textual form"
        % (rule.rule_id, type(intent_filter).__name__)
    )
