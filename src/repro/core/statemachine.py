"""State machines for mode-based specification state.

Section V-B: the paper's specification language combines its simplified
temporal logic with state machine descriptions "to encode modal system
state or to reduce the complexity of temporal operators" — nesting of
temporal operators is avoided by moving modal bookkeeping into machines.

A machine has named states and guarded transitions; guards are ordinary
*propositional* formulas of the specification language (temporal
operators are rejected — that is the point of the machines).  The monitor
runs every machine over the trace once, producing a per-row state name
that formulas reference with ``in_state(machine, state)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.ast import Formula
from repro.core.evaluator import EvalContext, evaluate_formula
from repro.core.parser import parse_formula
from repro.core.types import TRUE_CODE
from repro.errors import SpecError

#: A transition may be given as ``(source, target, guard_text)``.
TransitionSpec = Union["Transition", Tuple[str, str, str]]


@dataclass(frozen=True)
class Transition:
    """One guarded transition."""

    source: str
    target: str
    guard: Formula

    @classmethod
    def parse(cls, source: str, target: str, guard_text: str) -> "Transition":
        """Build a transition from guard source text."""
        return cls(source, target, parse_formula(guard_text))


class StateMachine:
    """A deterministic mode machine evaluated over a trace.

    Semantics per row: transitions *out of the current state* are tried
    in declaration order; the first one whose guard is TRUE fires, and the
    machine occupies the target state from that same row onward.  At most
    one transition fires per row.  UNKNOWN guards do not fire.
    """

    def __init__(
        self,
        name: str,
        states: Sequence[str],
        initial: str,
        transitions: Sequence[TransitionSpec],
    ) -> None:
        if not name:
            raise SpecError("state machine needs a name")
        if len(set(states)) != len(states):
            raise SpecError("%s: duplicate state names" % name)
        self.name = name
        self.states: Tuple[str, ...] = tuple(states)
        if initial not in self.states:
            raise SpecError(
                "%s: initial state %r not among states" % (name, initial)
            )
        self.initial = initial
        self.transitions: List[Transition] = []
        for spec in transitions:
            transition = (
                spec
                if isinstance(spec, Transition)
                else Transition.parse(spec[0], spec[1], spec[2])
            )
            if transition.source not in self.states:
                raise SpecError(
                    "%s: unknown source state %r" % (name, transition.source)
                )
            if transition.target not in self.states:
                raise SpecError(
                    "%s: unknown target state %r" % (name, transition.target)
                )
            if transition.guard.has_temporal():
                raise SpecError(
                    "%s: guard %s contains a temporal operator; encode "
                    "timing in states instead" % (name, transition.guard)
                )
            if transition.guard.machines():
                raise SpecError(
                    "%s: guards may not reference other state machines"
                    % name
                )
            self.transitions.append(transition)

    @property
    def alphabet(self) -> frozenset:
        """The set of state names."""
        return frozenset(self.states)

    def signals(self) -> Tuple[str, ...]:
        """All signals referenced by any guard."""
        names: List[str] = []
        for transition in self.transitions:
            names.extend(transition.guard.signals())
        return tuple(dict.fromkeys(names))

    def run(self, ctx: EvalContext, initial: Optional[str] = None) -> np.ndarray:
        """Evaluate the machine over the context's trace view.

        Returns one state name per row (numpy unicode array).  ``initial``
        overrides the starting state — used by the online monitor to
        resume a machine mid-stream.
        """
        if initial is not None and initial not in self.states:
            raise SpecError(
                "%s: cannot resume from unknown state %r" % (self.name, initial)
            )
        n = ctx.n_rows
        guard_codes = [
            evaluate_formula(transition.guard, ctx)
            for transition in self.transitions
        ]
        by_source: Dict[str, List[int]] = {}
        for index, transition in enumerate(self.transitions):
            by_source.setdefault(transition.source, []).append(index)

        result = np.empty(n, dtype="U%d" % max(len(s) for s in self.states))
        current = initial if initial is not None else self.initial
        for row in range(n):
            for index in by_source.get(current, ()):
                if guard_codes[index][row] == TRUE_CODE:
                    current = self.transitions[index].target
                    break
            result[row] = current
        return result
