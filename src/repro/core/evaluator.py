"""Offline evaluation of specification formulas over trace views.

Evaluation is vectorized: every formula node produces one int8 verdict
code per trace row (see :mod:`repro.core.types` for the encoding), and
every expression node produces one float per row.  Bounded temporal
operators become sliding-window minima/maxima; rows whose window extends
past the end of the trace see UNKNOWN padding, which yields the correct
three-valued verdict for truncated evidence.

Numeric semantics follow IEEE-754 deliberately: NaN and infinities
propagate through arithmetic, and any comparison involving NaN is FALSE.
A monitored specification therefore treats a corrupted value as "does not
satisfy the bound", matching how the paper's rules reacted to exceptional
injected values.

Two layers keep the hot path fast:

* bounded temporal operators run on the O(n) sliding min/max kernels of
  :mod:`repro.core.windows` (amortized O(1) per row regardless of the
  window width, versus O(w) for the naive strided reduction);
* every :class:`EvalContext` memoizes node results by *structural*
  equality (see the cached hashes in :mod:`repro.core.ast`), so a
  subformula shared between rules — a common gate, an ``in_state`` test,
  a repeated signal derivation — is computed exactly once per trace.
  Cached arrays are shared, never mutated: every consumer that writes
  into a verdict array copies it first.

When a metrics registry is installed (see :mod:`repro.obs`), every
dispatch through :func:`evaluate_formula` / :func:`evaluate_expr`
records its wall time into a per-node-type histogram
(``eval.formula.<NodeType>.seconds`` / ``eval.expr.<NodeType>.seconds``),
and the memo caches count hits and misses into
``eval.memo.{formula,expr}.{hits,misses}``.  Timings are *inclusive* of
operand evaluation — the recursion times each node through the same
public entry point — which is exactly the view needed to answer "which
operator dominates the check".  With the default (disabled) registry the
instrumentation is one attribute check.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.core.ast import (
    Always,
    And,
    Binary,
    BoolConst,
    Comparison,
    Constant,
    Eventually,
    Expr,
    Formula,
    Fresh,
    Historically,
    Implies,
    InState,
    Next,
    Once,
    Not,
    Or,
    SignalPredicate,
    SignalRef,
    TraceFunc,
    Unary,
)
from repro.core.robustness import Bounds
from repro.core.types import (
    FALSE_CODE,
    TRUE_CODE,
    UNKNOWN_CODE,
    bools_to_codes,
)
from repro.core.windows import (
    bounds_to_rows,
    future_aggregate,
    past_aggregate,
)
from repro.errors import EvaluationError
from repro.logs.trace import BatchTraceView, TraceView
from repro.obs import get_registry


class EvalContext:
    """Everything a formula needs to evaluate against one trace view.

    The view may be a single :class:`~repro.logs.trace.TraceView`
    (columns shaped ``(n_rows,)``) or a
    :class:`~repro.logs.trace.BatchTraceView` stacking N equal-shape
    traces (columns shaped ``(n_traces, n_rows)``): every evaluation
    rule operates along the last axis, so one pass over a batch
    evaluates every trace at once.

    Attributes:
        view: the uniformly sampled trace (or stacked batch).
        machine_states: per-machine array of current state names per row
            (populated by the monitor after running its state machines).
        machine_alphabets: per-machine set of valid state names, used to
            reject typos in ``in_state`` references.
        memo: whether to memoize node results by structural equality.
            The caches are valid as long as the view's columns and the
            machine state arrays do not change; a caller that replaces
            ``machine_states`` after evaluating must call
            :meth:`invalidate_cache` (the monitor never does — it runs
            every machine before the first rule).
    """

    def __init__(
        self,
        view: Union[TraceView, BatchTraceView],
        machine_states: Optional[Mapping[str, np.ndarray]] = None,
        machine_alphabets: Optional[Mapping[str, frozenset]] = None,
        memo: bool = True,
    ) -> None:
        self.view = view
        self.machine_states: Dict[str, np.ndarray] = dict(machine_states or {})
        self.machine_alphabets: Dict[str, frozenset] = dict(
            machine_alphabets or {}
        )
        self.memo = memo
        self.formula_cache: Optional[Dict[Formula, np.ndarray]] = (
            {} if memo else None
        )
        self.expr_cache: Optional[Dict[Expr, np.ndarray]] = (
            {} if memo else None
        )
        self.robust_cache: Optional[Dict[Formula, Bounds]] = (
            {} if memo else None
        )

    def invalidate_cache(self) -> None:
        """Drop every memoized result (after mutating machines/view)."""
        if self.formula_cache is not None:
            self.formula_cache.clear()
        if self.expr_cache is not None:
            self.expr_cache.clear()
        if self.robust_cache is not None:
            self.robust_cache.clear()

    @property
    def n_rows(self) -> int:
        """Number of rows under evaluation (per trace, for a batch)."""
        return self.view.n_rows

    @property
    def shape(self) -> tuple:
        """Shape of every column/verdict array in this context."""
        shape = getattr(self.view, "shape", None)
        if shape is None:
            return (self.view.n_rows,)
        return shape


def evaluate_expr(node: Expr, ctx: EvalContext) -> np.ndarray:
    """Evaluate a numeric expression to one float per row.

    Results are memoized per context by structural node equality; the
    returned array is shared, so callers must copy before writing.
    """
    registry = get_registry()
    cache = ctx.expr_cache
    if cache is not None:
        cached = cache.get(node)
        if cached is not None:
            if registry.enabled:
                registry.counter("eval.memo.expr.hits").inc()
            return cached
    if not registry.enabled:
        result = _evaluate_expr(node, ctx)
    else:
        started = time.perf_counter()
        result = _evaluate_expr(node, ctx)
        registry.histogram(
            "eval.expr.%s.seconds" % type(node).__name__
        ).observe(time.perf_counter() - started)
    if cache is not None:
        if registry.enabled:
            registry.counter("eval.memo.expr.misses").inc()
        cache[node] = result
    return result


def evaluate_formula(node: Formula, ctx: EvalContext) -> np.ndarray:
    """Evaluate a formula to one int8 verdict code per row.

    Results are memoized per context by structural node equality; the
    returned array is shared, so callers must copy before writing.
    """
    registry = get_registry()
    cache = ctx.formula_cache
    if cache is not None:
        cached = cache.get(node)
        if cached is not None:
            if registry.enabled:
                registry.counter("eval.memo.formula.hits").inc()
            return cached
    if not registry.enabled:
        result = _evaluate_formula(node, ctx)
    else:
        started = time.perf_counter()
        result = _evaluate_formula(node, ctx)
        registry.histogram(
            "eval.formula.%s.seconds" % type(node).__name__
        ).observe(time.perf_counter() - started)
    if cache is not None:
        if registry.enabled:
            registry.counter("eval.memo.formula.misses").inc()
        cache[node] = result
    return result


def evaluate_robustness(node: Formula, ctx: EvalContext) -> Bounds:
    """Evaluate a formula's robustness interval, one ``[lower, upper]``
    pair of floats per row.

    The numeric lattice mirrors the boolean one connective for
    connective (min for ``and``, max for ``or``, inf/sup over temporal
    windows via the same O(n) kernels), with signed distances at
    comparisons and ``±inf`` at boolean atoms; truncated windows
    aggregate against ``[-inf, +inf]`` padding exactly where the boolean
    path pads UNKNOWN.  See :mod:`repro.core.robustness` for the sign
    consistency invariant relating the two.

    Results are memoized per context by structural node equality; the
    returned arrays are shared, so callers must copy before writing.
    """
    registry = get_registry()
    cache = ctx.robust_cache
    if cache is not None:
        cached = cache.get(node)
        if cached is not None:
            if registry.enabled:
                registry.counter("eval.memo.robust.hits").inc()
            return cached
    if not registry.enabled:
        result = _evaluate_robustness(node, ctx)
    else:
        started = time.perf_counter()
        result = _evaluate_robustness(node, ctx)
        registry.histogram(
            "eval.robust.%s.seconds" % type(node).__name__
        ).observe(time.perf_counter() - started)
    if cache is not None:
        if registry.enabled:
            registry.counter("eval.memo.robust.misses").inc()
        cache[node] = result
    return result


def _evaluate_expr(node: Expr, ctx: EvalContext) -> np.ndarray:
    if isinstance(node, Constant):
        return np.full(ctx.shape, node.value)
    if isinstance(node, SignalRef):
        return _signal_values(node.name, ctx)
    if isinstance(node, Unary):
        operand = evaluate_expr(node.operand, ctx)
        if node.op == "-":
            return -operand
        if node.op == "abs":
            return np.abs(operand)
        raise EvaluationError("unknown unary operator %r" % node.op)
    if isinstance(node, Binary):
        left = evaluate_expr(node.left, ctx)
        right = evaluate_expr(node.right, ctx)
        with np.errstate(all="ignore"):
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            if node.op == "/":
                return left / right
            if node.op == "min":
                return np.minimum(left, right)
            if node.op == "max":
                return np.maximum(left, right)
        raise EvaluationError("unknown binary operator %r" % node.op)
    if isinstance(node, TraceFunc):
        return _trace_func(node, ctx)
    raise EvaluationError("cannot evaluate expression node %r" % (node,))


def _evaluate_formula(node: Formula, ctx: EvalContext) -> np.ndarray:
    if isinstance(node, BoolConst):
        code = TRUE_CODE if node.value else FALSE_CODE
        return np.full(ctx.shape, code, dtype=np.int8)
    if isinstance(node, SignalPredicate):
        return bools_to_codes(_signal_values(node.name, ctx) != 0.0)
    if isinstance(node, Fresh):
        _require_signal(node.name, ctx)
        return bools_to_codes(ctx.view.fresh(node.name))
    if isinstance(node, Comparison):
        return _comparison(node, ctx)
    if isinstance(node, Not):
        return (2 - evaluate_formula(node.operand, ctx)).astype(np.int8)
    if isinstance(node, And):
        return np.minimum(
            evaluate_formula(node.left, ctx), evaluate_formula(node.right, ctx)
        )
    if isinstance(node, Or):
        return np.maximum(
            evaluate_formula(node.left, ctx), evaluate_formula(node.right, ctx)
        )
    if isinstance(node, Implies):
        left = evaluate_formula(node.left, ctx)
        right = evaluate_formula(node.right, ctx)
        return np.maximum((2 - left).astype(np.int8), right)
    if isinstance(node, Next):
        inner = evaluate_formula(node.operand, ctx)
        if inner.shape[-1] == 0:
            return inner.copy()
        shifted = np.empty_like(inner)
        if inner.shape[-1] > 1:
            shifted[..., :-1] = inner[..., 1:]
        shifted[..., -1] = UNKNOWN_CODE
        return shifted
    if isinstance(node, Always):
        inner = evaluate_formula(node.operand, ctx)
        return _window_aggregate(inner, node.lo, node.hi, ctx, minimum=True)
    if isinstance(node, Eventually):
        inner = evaluate_formula(node.operand, ctx)
        return _window_aggregate(inner, node.lo, node.hi, ctx, minimum=False)
    if isinstance(node, Historically):
        inner = evaluate_formula(node.operand, ctx)
        return _past_window_aggregate(inner, node.lo, node.hi, ctx, minimum=True)
    if isinstance(node, Once):
        inner = evaluate_formula(node.operand, ctx)
        return _past_window_aggregate(inner, node.lo, node.hi, ctx, minimum=False)
    if isinstance(node, InState):
        return _in_state(node, ctx)
    raise EvaluationError("cannot evaluate formula node %r" % (node,))


def _evaluate_robustness(node: Formula, ctx: EvalContext) -> Bounds:
    if isinstance(node, Comparison):
        return Bounds.point(_comparison_margin(node, ctx))
    if isinstance(node, (BoolConst, SignalPredicate, Fresh, InState)):
        # Boolean atoms carry no metric: lift the three-valued verdict
        # into the lattice (TRUE is infinitely robust, FALSE infinitely
        # violated, UNKNOWN the whole line).  Delegating to the boolean
        # evaluator reuses its validation and its memo entry.
        return _bounds_from_codes(evaluate_formula(node, ctx))
    if isinstance(node, Not):
        inner = evaluate_robustness(node.operand, ctx)
        return Bounds(-inner.upper, -inner.lower)
    if isinstance(node, And):
        left = evaluate_robustness(node.left, ctx)
        right = evaluate_robustness(node.right, ctx)
        return Bounds(
            np.minimum(left.lower, right.lower),
            np.minimum(left.upper, right.upper),
        )
    if isinstance(node, Or):
        left = evaluate_robustness(node.left, ctx)
        right = evaluate_robustness(node.right, ctx)
        return Bounds(
            np.maximum(left.lower, right.lower),
            np.maximum(left.upper, right.upper),
        )
    if isinstance(node, Implies):
        # a -> b  ≡  (not a) or b, interval-wise.
        left = evaluate_robustness(node.left, ctx)
        right = evaluate_robustness(node.right, ctx)
        return Bounds(
            np.maximum(-left.upper, right.lower),
            np.maximum(-left.lower, right.upper),
        )
    if isinstance(node, Next):
        inner = evaluate_robustness(node.operand, ctx)
        if inner.lower.shape[-1] == 0:
            return Bounds(inner.lower.copy(), inner.upper.copy())
        lower = np.empty_like(inner.lower)
        upper = np.empty_like(inner.upper)
        if lower.shape[-1] > 1:
            lower[..., :-1] = inner.lower[..., 1:]
            upper[..., :-1] = inner.upper[..., 1:]
        lower[..., -1] = -np.inf
        upper[..., -1] = np.inf
        return Bounds(lower, upper)
    if isinstance(node, Always):
        inner = evaluate_robustness(node.operand, ctx)
        return _robust_window(inner, node.lo, node.hi, ctx, minimum=True)
    if isinstance(node, Eventually):
        inner = evaluate_robustness(node.operand, ctx)
        return _robust_window(inner, node.lo, node.hi, ctx, minimum=False)
    if isinstance(node, Historically):
        inner = evaluate_robustness(node.operand, ctx)
        return _robust_past_window(inner, node.lo, node.hi, ctx, minimum=True)
    if isinstance(node, Once):
        inner = evaluate_robustness(node.operand, ctx)
        return _robust_past_window(inner, node.lo, node.hi, ctx, minimum=False)
    raise EvaluationError(
        "cannot evaluate robustness of formula node %r" % (node,)
    )


def future_reach(node: Formula, period: float) -> float:
    """How far into the future a formula's verdict can depend, in seconds.

    A row's verdict is final once the trace extends ``future_reach``
    seconds past it — the quantity an online monitor needs to decide how
    long to wait before emitting a verdict.  ``next`` reaches one sample
    period; bounded future operators reach their upper bound plus whatever
    their operand reaches; past operators add nothing.
    """
    if isinstance(node, (Always, Eventually)):
        return node.hi + future_reach(node.operand, period)
    if isinstance(node, (Once, Historically)):
        return future_reach(node.operand, period)
    if isinstance(node, Next):
        return period + future_reach(node.operand, period)
    if isinstance(node, Not):
        return future_reach(node.operand, period)
    if isinstance(node, (And, Or, Implies)):
        return max(
            future_reach(node.left, period), future_reach(node.right, period)
        )
    return 0.0


def past_reach(node: Formula, period: float) -> float:
    """How far into the past a formula's verdict can depend, in seconds.

    The history an online monitor must retain behind its emission
    frontier for verdicts to match an offline evaluation.
    """
    if isinstance(node, (Once, Historically)):
        return node.hi + past_reach(node.operand, period)
    if isinstance(node, (Always, Eventually, Next)):
        return past_reach(node.operand, period)
    if isinstance(node, Not):
        return past_reach(node.operand, period)
    if isinstance(node, (And, Or, Implies)):
        return max(
            past_reach(node.left, period), past_reach(node.right, period)
        )
    return 0.0


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _require_signal(name: str, ctx: EvalContext) -> None:
    if name not in ctx.view:
        raise EvaluationError(
            "formula references signal %r, which the trace view does not "
            "carry (available: %s)" % (name, ", ".join(ctx.view.signal_names))
        )


def _signal_values(name: str, ctx: EvalContext) -> np.ndarray:
    _require_signal(name, ctx)
    return ctx.view.values(name)


def _trace_func(node: TraceFunc, ctx: EvalContext) -> np.ndarray:
    _require_signal(node.signal, ctx)
    view = ctx.view
    if node.kind == "delta":
        return view.delta_fresh(node.signal)
    if node.kind == "delta_naive":
        return view.delta_naive(node.signal)
    if node.kind == "rate":
        return view.rate(node.signal)
    if node.kind == "prev":
        values = view.values(node.signal)
        if values.shape[-1] == 0:
            return values.copy()
        previous = np.empty_like(values)
        previous[..., 0] = values[..., 0]
        if values.shape[-1] > 1:
            previous[..., 1:] = values[..., :-1]
        return previous
    if node.kind == "age":
        return view.fresh_age(node.signal).astype(float)
    raise EvaluationError("unknown trace function %r" % node.kind)


def _comparison(node: Comparison, ctx: EvalContext) -> np.ndarray:
    left = evaluate_expr(node.left, ctx)
    right = evaluate_expr(node.right, ctx)
    with np.errstate(invalid="ignore"):
        if node.op == "<":
            result = left < right
        elif node.op == "<=":
            result = left <= right
        elif node.op == ">":
            result = left > right
        elif node.op == ">=":
            result = left >= right
        elif node.op == "==":
            result = left == right
        elif node.op == "!=":
            result = left != right
        else:
            raise EvaluationError("unknown comparison operator %r" % node.op)
    return bools_to_codes(result)


def _comparison_margin(node: Comparison, ctx: EvalContext) -> np.ndarray:
    """Signed distance to the comparison boundary, one float per row.

    Positive where the comparison holds, negative where it fails, zero
    on the boundary (consistent with the boolean lattice for the
    non-strict operators; a strict comparison at exact equality is FALSE
    with margin 0 — sign consistency requires only ``margin > 0 ⇒ TRUE``
    and ``margin < 0 ⇒ FALSE``).  Rows where either side is NaN are
    boolean-FALSE whatever the operator, so their margin is ``-inf``:
    a corrupted value is infinitely far from satisfying the bound.
    """
    left = evaluate_expr(node.left, ctx)
    right = evaluate_expr(node.right, ctx)
    with np.errstate(invalid="ignore"):
        if node.op in ("<", "<="):
            margin = right - left
        elif node.op in (">", ">="):
            margin = left - right
        elif node.op == "==":
            margin = -np.abs(left - right)
        elif node.op == "!=":
            margin = np.abs(left - right)
        else:
            raise EvaluationError(
                "unknown comparison operator %r" % node.op
            )
        # inf - inf and NaN operands both yield NaN; fold every NaN to
        # the infinity whose sign agrees with the boolean verdict.  IEEE
        # makes NaN compare unequal to everything, so ``!=`` holds
        # (margin +inf) while every other operator fails (margin -inf).
        nan_margin = np.inf if node.op == "!=" else -np.inf
        return np.where(np.isnan(margin), nan_margin, margin)


def _bounds_from_codes(codes: np.ndarray) -> Bounds:
    """Lift three-valued verdict codes into robustness intervals."""
    lower = np.where(codes == TRUE_CODE, np.inf, -np.inf)
    upper = np.where(codes == FALSE_CODE, -np.inf, np.inf)
    return Bounds(lower, upper)


def _robust_window(
    bounds: Bounds, lo: float, hi: float, ctx: EvalContext, minimum: bool
) -> Bounds:
    """Sliding inf/sup of robustness bounds over the window ``[lo, hi]``.

    Rows whose window extends past the trace end aggregate their lower
    bound against ``-inf`` and their upper bound against ``+inf`` — the
    missing evidence could be arbitrarily bad or good — which is exactly
    the interval counterpart of the boolean path's UNKNOWN padding.
    """
    lo_idx, hi_idx = bounds_to_rows(lo, hi, ctx.view.period)
    return Bounds(
        future_aggregate(
            bounds.lower, lo_idx, hi_idx, minimum=minimum, pad_value=-np.inf
        ),
        future_aggregate(
            bounds.upper, lo_idx, hi_idx, minimum=minimum, pad_value=np.inf
        ),
    )


def _robust_past_window(
    bounds: Bounds, lo: float, hi: float, ctx: EvalContext, minimum: bool
) -> Bounds:
    """Past-window mirror of :func:`_robust_window`."""
    lo_idx, hi_idx = bounds_to_rows(lo, hi, ctx.view.period)
    return Bounds(
        past_aggregate(
            bounds.lower, lo_idx, hi_idx, minimum=minimum, pad_value=-np.inf
        ),
        past_aggregate(
            bounds.upper, lo_idx, hi_idx, minimum=minimum, pad_value=np.inf
        ),
    )


def _window_aggregate(
    codes: np.ndarray,
    lo: float,
    hi: float,
    ctx: EvalContext,
    minimum: bool,
) -> np.ndarray:
    """Sliding min/max of ``codes`` over the time window ``[lo, hi]``.

    The window is converted to row offsets on the uniform grid and
    aggregated by the O(n) kernels of :mod:`repro.core.windows`.  Rows
    whose window extends past the trace end aggregate against UNKNOWN
    padding, which propagates exactly the right three-valued verdict for
    truncated evidence (see :mod:`repro.core.types`).
    """
    lo_idx, hi_idx = bounds_to_rows(lo, hi, ctx.view.period)
    return future_aggregate(codes, lo_idx, hi_idx, minimum=minimum)


def _past_window_aggregate(
    codes: np.ndarray,
    lo: float,
    hi: float,
    ctx: EvalContext,
    minimum: bool,
) -> np.ndarray:
    """Sliding min/max of ``codes`` over the *past* window ``[lo, hi]``.

    Mirrors :func:`_window_aggregate` backwards: rows whose window
    precedes the start of the trace aggregate against UNKNOWN padding.
    """
    lo_idx, hi_idx = bounds_to_rows(lo, hi, ctx.view.period)
    return past_aggregate(codes, lo_idx, hi_idx, minimum=minimum)


def _in_state(node: InState, ctx: EvalContext) -> np.ndarray:
    states = ctx.machine_states.get(node.machine)
    if states is None:
        raise EvaluationError(
            "formula references state machine %r, which the monitor does "
            "not define" % node.machine
        )
    alphabet = ctx.machine_alphabets.get(node.machine)
    if alphabet is not None and node.state not in alphabet:
        raise EvaluationError(
            "state machine %r has no state %r (states: %s)"
            % (node.machine, node.state, ", ".join(sorted(alphabet)))
        )
    return bools_to_codes(states == node.state)
