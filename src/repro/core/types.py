"""Three-valued verdicts.

Offline monitoring of bounded temporal properties is inherently
three-valued: near the end of a finite trace, a bounded ``always`` or
``eventually`` window extends past the available data, so the monitor can
say neither "satisfied" nor "violated".  Verdicts therefore follow Kleene
three-valued logic: TRUE, FALSE, and UNKNOWN.

Internally, evaluation uses an int8 encoding chosen so the temporal
operators reduce to sliding-window minima/maxima:

====== =====
FALSE    0
UNKNOWN  1
TRUE     2
====== =====

With this encoding, ``and`` is elementwise ``min``, ``or`` is ``max``,
``not`` is ``2 - x`` — and a windowed ``min``/``max`` padded with UNKNOWN
gives exactly the right three-valued semantics for bounded ``always`` /
``eventually`` on a truncated trace.
"""

from __future__ import annotations

import enum

import numpy as np

#: int8 codes for the three truth values (see module docstring).
FALSE_CODE = np.int8(0)
UNKNOWN_CODE = np.int8(1)
TRUE_CODE = np.int8(2)


class Verdict(enum.Enum):
    """A three-valued monitoring verdict."""

    FALSE = 0
    UNKNOWN = 1
    TRUE = 2

    @classmethod
    def from_code(cls, code: int) -> "Verdict":
        """Decode an int8 truth code."""
        return cls(int(code))

    @classmethod
    def from_bool(cls, value: bool) -> "Verdict":
        """Lift a Python boolean."""
        return cls.TRUE if value else cls.FALSE

    def __and__(self, other: "Verdict") -> "Verdict":
        return Verdict(min(self.value, other.value))

    def __or__(self, other: "Verdict") -> "Verdict":
        return Verdict(max(self.value, other.value))

    def __invert__(self) -> "Verdict":
        return Verdict(2 - self.value)

    def implies(self, other: "Verdict") -> "Verdict":
        """Three-valued material implication."""
        return (~self) | other

    @property
    def is_true(self) -> bool:
        """Definitely satisfied."""
        return self is Verdict.TRUE

    @property
    def is_false(self) -> bool:
        """Definitely violated."""
        return self is Verdict.FALSE

    @property
    def is_unknown(self) -> bool:
        """Not decidable on the available trace."""
        return self is Verdict.UNKNOWN


def codes_to_bools(codes: np.ndarray) -> np.ndarray:
    """TRUE rows of a verdict code array, as a boolean mask."""
    return codes == TRUE_CODE


def bools_to_codes(mask: np.ndarray) -> np.ndarray:
    """Lift a boolean array to verdict codes (no UNKNOWNs)."""
    return np.where(mask, TRUE_CODE, FALSE_CODE).astype(np.int8)


def summarize_codes(codes: np.ndarray) -> Verdict:
    """Collapse per-row codes into one verdict.

    FALSE if any row is FALSE (a violation exists somewhere); otherwise
    UNKNOWN if any row could not be decided; otherwise TRUE.
    """
    if len(codes) == 0:
        return Verdict.UNKNOWN
    if (codes == FALSE_CODE).any():
        return Verdict.FALSE
    if (codes == UNKNOWN_CODE).any():
        return Verdict.UNKNOWN
    return Verdict.TRUE
