"""Intent approximation — violation triage filters (§V-A, §IV-A).

The paper's monitor estimated the feature's *intent to accelerate* from
an increase in requested torque, then discovered on real-vehicle logs
that "torque request increases do not necessarily imply system intent":
climbing a hill raises torque at constant speed, and the flagged
violations "included negligibly sized increases as well as extremely
short transient increases".  Their triage weighed "the intensity and
duration of the violations" to decide which were real.

These filters make that triage mechanical and reusable.  A rule's
*relaxed* variant attaches filters that drop violations that are too
short, too small, or both — implementing intent approximation as a
post-processing stage rather than baking thresholds into every formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.core.ast import Expr
from repro.core.evaluator import EvalContext, evaluate_expr
from repro.core.parser import parse_expr
from repro.core.violations import Violation


class IntentFilter:
    """Interface: decide whether a violation reflects real intent."""

    def keep(self, violation: Violation, ctx: EvalContext) -> bool:
        """True when the violation should be reported."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description for reports."""
        raise NotImplementedError


@dataclass(frozen=True)
class DurationFilter(IntentFilter):
    """Drop violations shorter than ``min_duration`` seconds.

    Catches the paper's "extremely short transient increases" — e.g. a
    single-cycle torque blip has no time to move the vehicle.
    """

    min_duration: float

    def keep(self, violation: Violation, ctx: EvalContext) -> bool:
        return violation.duration >= self.min_duration

    def describe(self) -> str:
        return "duration >= %g s" % self.min_duration


class MagnitudeFilter(IntentFilter):
    """Drop violations whose peak |expression| stays below a threshold.

    Catches "negligibly sized increases": e.g. with expression
    ``delta(RequestedTorque)`` and threshold 15 Nm, a violation whose
    torque increments never reach 15 Nm is treated as noise, not intent.
    """

    def __init__(self, expression: Union[str, Expr], threshold: float) -> None:
        self.expression = (
            parse_expr(expression) if isinstance(expression, str) else expression
        )
        self.threshold = threshold

    def keep(self, violation: Violation, ctx: EvalContext) -> bool:
        values = evaluate_expr(self.expression, ctx)
        span = values[violation.start_row : violation.end_row + 1]
        finite = span[np.isfinite(span)]
        if len(finite) == 0:
            # A violation driven entirely by non-finite values is never
            # negligible.
            return True
        return bool(np.abs(finite).max() >= self.threshold)

    def describe(self) -> str:
        return "peak |%s| >= %g" % (self.expression, self.threshold)


@dataclass(frozen=True)
class PersistenceFilter(IntentFilter):
    """Drop violations spanning fewer than ``min_rows`` rows.

    A row-count variant of :class:`DurationFilter`, convenient when the
    tolerance is naturally expressed in controller cycles (e.g. "one
    cycle of bad requested deceleration may be tolerated").
    """

    min_rows: int

    def keep(self, violation: Violation, ctx: EvalContext) -> bool:
        return violation.rows >= self.min_rows

    def describe(self) -> str:
        return "at least %d rows" % self.min_rows


def apply_filters(
    violations: Sequence[Violation],
    filters: Sequence[IntentFilter],
    ctx: EvalContext,
) -> Tuple[List[Violation], List[Violation]]:
    """Partition violations into (kept, dropped) under all filters.

    A violation is kept only if *every* filter keeps it — filters express
    independent reasons to dismiss, so dismissal by any one suffices.
    """
    kept: List[Violation] = []
    dropped: List[Violation] = []
    for violation in violations:
        if all(f.keep(violation, ctx) for f in filters):
            kept.append(violation)
        else:
            dropped.append(violation)
    return kept, dropped
