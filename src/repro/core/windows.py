"""O(n) sliding-window kernels for the bounded temporal operators.

Every bounded operator (``always``/``eventually`` forwards,
``historically``/``once`` backwards) reduces to a sliding minimum or
maximum of verdict codes over a fixed row window.  The obvious
vectorization — a strided window view reduced along its window axis —
is O(n·w): at the paper's 20 s hold windows (w = 1000 rows at the 20 ms
monitor period) every operator performs ~1000 redundant comparisons per
row.  This module provides the amortized-O(1)-per-row alternative that
the online-monitoring literature calls for (Deshmukh et al., "Robust
Online Monitoring of Signal Temporal Logic"): the van Herk / Gil–Werman
block prefix/suffix scheme, in pure NumPy.

The scheme partitions the padded input into blocks of the window width,
takes a cumulative min/max from the left (``prefix``) and from the right
(``suffix``) inside each block, and combines one element of each per
output row — three passes over the data regardless of window width.

Every kernel operates along the **last axis**, so a 2-D ``(trace, row)``
batch from :class:`~repro.logs.trace.BatchTraceView` aggregates all
traces in one fused pass; 1-D inputs behave exactly as before.  The
block kernel's padded/prefix/suffix intermediates come from a
thread-local scratch pool (reused across calls of the same shape) so a
campaign's worth of window aggregates does not churn three fresh
allocations per operator; outputs are always freshly allocated and
never alias the pool.

Both kernels share the seed implementation's padding semantics exactly:
rows whose window extends past the end (future operators) or before the
start (past operators) of the trace aggregate against UNKNOWN padding,
which yields the correct three-valued verdict for truncated evidence.
The original strided kernel is retained, selectable via
:func:`use_kernel`, as the reference implementation for differential
tests and the benchmark ablation; outputs are byte-identical by
construction (and checked by the fuzz suite).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Tuple

import numpy as np

from repro.core.types import UNKNOWN_CODE
from repro.errors import EvaluationError

#: Selectable kernel implementations (see :func:`use_kernel`).
KERNELS = ("block", "strided")

_active_kernel = "block"


def active_kernel() -> str:
    """Name of the kernel currently evaluating window aggregates."""
    return _active_kernel


def set_kernel(name: str) -> str:
    """Select the window kernel; returns the previously active name.

    ``"block"`` is the O(n) van Herk/Gil–Werman scheme (the default);
    ``"strided"`` is the original O(n·w) strided-reduction reference.
    """
    global _active_kernel
    if name not in KERNELS:
        raise ValueError(
            "unknown window kernel %r (choose from %s)" % (name, KERNELS)
        )
    previous = _active_kernel
    _active_kernel = name
    return previous


class use_kernel:
    """Context manager selecting a kernel for a ``with`` block.

    >>> with use_kernel("strided"):
    ...     report = monitor.check(trace)
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._previous = ""

    def __enter__(self) -> "use_kernel":
        self._previous = set_kernel(self.name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        set_kernel(self._previous)


def bounds_to_rows(lo: float, hi: float, period: float) -> Tuple[int, int]:
    """Convert a ``[lo, hi]`` second bound to inclusive row offsets.

    The single source of truth for bound→grid conversion, shared by the
    forward and backward aggregates (and by anything else that needs to
    know which rows a temporal bound touches).  Raises
    :class:`~repro.errors.EvaluationError` when the bound straddles no
    grid sample (a window tighter than the monitor period).
    """
    lo_idx = int(math.ceil(lo / period - 1e-9))
    hi_idx = int(math.floor(hi / period + 1e-9))
    if hi_idx < lo_idx:
        raise EvaluationError(
            "temporal bound [%g, %g] s contains no sample at a period of "
            "%g s" % (lo, hi, period)
        )
    return lo_idx, hi_idx


# ----------------------------------------------------------------------
# Thread-local scratch pool
# ----------------------------------------------------------------------

#: Upper bound on pooled buffers per thread; campaigns use a handful of
#: distinct (shape, width) combinations, so this is generous.
_SCRATCH_CAPACITY = 64

_scratch = threading.local()


def _scratch_buffer(tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
    """An uninitialized pooled buffer for ``(tag, shape, dtype)``.

    Buffers are reused across calls on the same thread (LRU-evicted at
    :data:`_SCRATCH_CAPACITY` entries).  Callers must fully overwrite
    the buffer before reading it and must not let it escape: every
    public kernel returns a freshly allocated array.
    """
    pool = getattr(_scratch, "pool", None)
    if pool is None:
        pool = _scratch.pool = OrderedDict()
    key = (tag, shape, np.dtype(dtype).str)
    buf = pool.get(key)
    if buf is None:
        buf = np.empty(shape, dtype=dtype)
        pool[key] = buf
        if len(pool) > _SCRATCH_CAPACITY:
            pool.popitem(last=False)
    else:
        pool.move_to_end(key)
    return buf


def scratch_pool_size() -> int:
    """Number of buffers currently pooled on the calling thread."""
    pool = getattr(_scratch, "pool", None)
    return 0 if pool is None else len(pool)


def clear_scratch_pool() -> None:
    """Drop the calling thread's pooled buffers (tests, memory probes)."""
    _scratch.pool = OrderedDict()


# ----------------------------------------------------------------------
# Core sliding extreme
# ----------------------------------------------------------------------


def _identity(dtype: np.dtype, minimum: bool):
    """The neutral element for min/max at ``dtype`` (pads never win)."""
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        return info.max if minimum else info.min
    return np.inf if minimum else -np.inf


def sliding_extreme(
    values: np.ndarray, width: int, minimum: bool
) -> np.ndarray:
    """O(n) sliding min/max along the last axis.

    ``out[..., i] = extreme(values[..., i : i + width])`` with output
    length ``values.shape[-1] - width + 1`` (must be >= 0); leading axes
    are preserved, so a 2-D ``(trace, row)`` batch aggregates every
    trace in one pass.  This is the van Herk/Gil–Werman block scan:
    cumulative extremes from the left and right of each ``width``-sized
    block; every window spans at most two blocks, so one suffix element
    and one prefix element cover it.
    """
    if width < 1:
        raise ValueError("window width must be >= 1, got %d" % width)
    values = np.asarray(values)
    n = values.shape[-1]
    lead = values.shape[:-1]
    out_len = n - width + 1
    if out_len < 0:
        raise ValueError(
            "window of %d rows does not fit an array of %d" % (width, n)
        )
    if out_len == 0:
        return np.empty(lead + (0,), dtype=values.dtype)
    if width == 1:
        return np.array(values, dtype=values.dtype, copy=True)
    ufunc = np.minimum if minimum else np.maximum
    pad = (-n) % width
    if pad:
        padded = _scratch_buffer("padded", lead + (n + pad,), values.dtype)
        padded[..., :n] = values
        padded[..., n:] = _identity(values.dtype, minimum)
    else:
        padded = values
    blocks = padded.reshape(lead + (-1, width))
    prefix = _scratch_buffer("prefix", blocks.shape, values.dtype)
    ufunc.accumulate(blocks, axis=-1, out=prefix)
    # Suffix scan: copy the fully reversed blocks into scratch, scan
    # left-to-right in place, then read the flat result reversed — the
    # same per-block right-to-left cumulative as the textbook scheme,
    # without the copy a reversed-view reshape would silently make.
    suffix = _scratch_buffer("suffix", blocks.shape, values.dtype)
    suffix[...] = blocks[..., ::-1, ::-1]
    ufunc.accumulate(suffix, axis=-1, out=suffix)
    flat = lead + (-1,)
    prefix_flat = prefix.reshape(flat)
    suffix_flat = suffix.reshape(flat)[..., ::-1]
    # The combine allocates the output fresh: results never alias the
    # pool, so memoized verdict arrays stay stable across later calls.
    return ufunc(
        suffix_flat[..., :out_len],
        prefix_flat[..., width - 1 : width - 1 + out_len],
    )


def _strided_extreme(
    values: np.ndarray, width: int, minimum: bool
) -> np.ndarray:
    """The original O(n·w) strided-reduction kernel (reference path)."""
    windows = np.lib.stride_tricks.sliding_window_view(
        values, width, axis=-1
    )
    if minimum:
        return windows.min(axis=-1)
    return windows.max(axis=-1)


def _extreme(values: np.ndarray, width: int, minimum: bool) -> np.ndarray:
    if _active_kernel == "block":
        return sliding_extreme(values, width, minimum)
    return _strided_extreme(values, width, minimum)


# ----------------------------------------------------------------------
# Padded temporal aggregates
# ----------------------------------------------------------------------


def future_aggregate(
    codes: np.ndarray,
    lo_idx: int,
    hi_idx: int,
    minimum: bool,
    pad_value: int = UNKNOWN_CODE,
) -> np.ndarray:
    """Sliding min/max of ``codes`` over rows ``[i+lo_idx, i+hi_idx]``.

    Rows whose window extends past the end of the array aggregate
    against ``pad_value`` padding (UNKNOWN by default — the truncated
    -evidence semantics of the bounded future operators).  Operates
    along the last axis; leading (batch) axes pass through.
    """
    codes = np.asarray(codes)
    n = codes.shape[-1]
    if n == 0:
        return np.empty(codes.shape, dtype=codes.dtype)
    width = hi_idx - lo_idx + 1
    pad = np.full(codes.shape[:-1] + (hi_idx,), pad_value, dtype=codes.dtype)
    padded = np.concatenate([codes, pad], axis=-1)
    extremes = _extreme(padded, width, minimum)
    return extremes[..., lo_idx : lo_idx + n].astype(codes.dtype)


def past_aggregate(
    codes: np.ndarray,
    lo_idx: int,
    hi_idx: int,
    minimum: bool,
    pad_value: int = UNKNOWN_CODE,
) -> np.ndarray:
    """Sliding min/max of ``codes`` over rows ``[i-hi_idx, i-lo_idx]``.

    Mirrors :func:`future_aggregate` backwards: rows whose window
    precedes the start of the array aggregate against ``pad_value``.
    """
    codes = np.asarray(codes)
    n = codes.shape[-1]
    if n == 0:
        return np.empty(codes.shape, dtype=codes.dtype)
    width = hi_idx - lo_idx + 1
    pad = np.full(codes.shape[:-1] + (hi_idx,), pad_value, dtype=codes.dtype)
    padded = np.concatenate([pad, codes], axis=-1)
    extremes = _extreme(padded, width, minimum)
    return extremes[..., :n].astype(codes.dtype)


def dilate_backwards(triggered: np.ndarray, width: int) -> np.ndarray:
    """True wherever ``triggered`` was nonzero within the last ``width`` rows.

    The warm-up mask primitive (§V-C2): a trigger row suppresses checking
    for itself and the ``width`` rows after it.  Equivalent to a past
    ``once[0, width]`` with zero padding before the trace start.
    """
    if width <= 0:
        return triggered > 0
    return past_aggregate(triggered, 0, width, minimum=False, pad_value=0) > 0
