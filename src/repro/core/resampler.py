"""Multi-rate sampling analysis (§V-C1).

The monitor's multi-rate machinery itself lives in
:class:`~repro.logs.trace.TraceView` (held values, freshness, and the
``delta`` / ``delta_naive`` pair).  This module provides the analysis
helpers the E4 ablation uses to *quantify* the problem the paper hit:
a slowly-sampled, steadily-increasing signal looks constant to a naive
held-value difference "for three samples out of four", and jitter
occasionally stretches that to four out of five.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.logs.trace import TraceView


@dataclass(frozen=True)
class TrendComparison:
    """How the naive and freshness-aware trends disagree on one signal.

    Attributes:
        rows: rows analysed.
        naive_rising_rows: rows where the naive difference is positive.
        fresh_rising_rows: rows where the freshness-aware difference is
            positive.
        spurious_stall_rows: rows where the signal is genuinely trending
            upward (freshness-aware) but the naive difference reads
            exactly zero — the paper's "appears constant" artifact.
        max_updates_between: the largest number of monitor samples
            between consecutive fresh updates (jitter can push a 4:1
            ratio to 5).
    """

    rows: int
    naive_rising_rows: int
    fresh_rising_rows: int
    spurious_stall_rows: int
    max_updates_between: int

    @property
    def stall_fraction(self) -> float:
        """Fraction of genuinely-rising rows that the naive trend misses."""
        if self.fresh_rising_rows == 0:
            return 0.0
        return self.spurious_stall_rows / self.fresh_rising_rows


def compare_trends(view: TraceView, signal: str) -> TrendComparison:
    """Quantify naive-vs-fresh trend disagreement for one signal."""
    naive = view.delta_naive(signal)
    fresh = view.delta_fresh(signal)
    ages = view.fresh_age(signal)
    naive_rising = naive > 0
    fresh_rising = fresh > 0
    spurious = fresh_rising & (naive == 0)
    max_between = int(ages.max()) if len(ages) else 0
    return TrendComparison(
        rows=view.n_rows,
        naive_rising_rows=int(naive_rising.sum()),
        fresh_rising_rows=int(fresh_rising.sum()),
        spurious_stall_rows=int(spurious.sum()),
        max_updates_between=max_between,
    )


def update_interval_histogram(view: TraceView, signal: str) -> np.ndarray:
    """Histogram of monitor rows between consecutive fresh updates.

    Index ``k`` counts the update gaps that spanned ``k`` rows.  For a
    4:1 period ratio without jitter every gap is 4; with jitter the
    histogram grows 3- and 5-row tails (§V-C1).
    """
    fresh_rows = np.flatnonzero(view.fresh(signal))
    if len(fresh_rows) < 2:
        return np.zeros(1, dtype=int)
    gaps = np.diff(fresh_rows)
    histogram = np.bincount(gaps)
    return histogram
