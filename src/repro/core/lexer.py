"""Tokenizer for the specification language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import SpecError

#: Reserved words of the language.
KEYWORDS = frozenset(
    {
        "and",
        "or",
        "not",
        "true",
        "false",
        "always",
        "eventually",
        "next",
        "once",
        "historically",
        "in_state",
        "fresh",
        "rising",
        "falling",
        "delta",
        "delta_naive",
        "rate",
        "prev",
        "age",
        "abs",
        "min",
        "max",
    }
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|==|!=|->|[-+*/<>()\[\],:])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is ``number``, ``ident``, ``keyword``, ``op`` or ``end``;
    ``text`` is the matched source text; ``pos`` is the character offset;
    ``line``/``column`` are the 1-based source coordinates of ``pos``, so
    errors can point at ``file:line:col`` instead of a bare offset.
    """

    kind: str
    text: str
    pos: int
    line: int = 1
    column: int = 1

    @property
    def location(self) -> str:
        """Human-readable ``line L column C`` coordinates."""
        return "line %d column %d" % (self.line, self.column)

    def __str__(self) -> str:
        if self.kind == "end":
            return "end of input"
        return "%r" % self.text


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, appending a synthetic ``end`` token.

    Raises:
        SpecError: on any character that is not part of the language.
    """
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise SpecError(
                "unexpected character %r at position %d (line %d column %d)"
                % (source[pos], pos, line, pos - line_start + 1)
            )
        if match.lastgroup != "ws":
            text = match.group()
            if match.lastgroup == "ident":
                kind = "keyword" if text in KEYWORDS else "ident"
            else:
                kind = match.lastgroup or "op"
            tokens.append(Token(kind, text, pos, line, pos - line_start + 1))
        else:
            segment = match.group()
            newlines = segment.count("\n")
            if newlines:
                line += newlines
                line_start = pos + segment.rindex("\n") + 1
        pos = match.end()
    tokens.append(
        Token("end", "", len(source), line, len(source) - line_start + 1)
    )
    return tokens
