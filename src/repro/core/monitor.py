"""The runtime monitor — rules checked against captured traces.

A :class:`Monitor` bundles safety :class:`Rule` objects and mode
:class:`~repro.core.statemachine.StateMachine` definitions, and checks
them offline against a :class:`~repro.logs.trace.Trace` (as the paper
did, on stored log data).  The result is a :class:`MonitorReport` with a
per-rule verdict, the individual violations, and the S/V letters used by
the paper's Table I.

Rule semantics per trace row ``i``:

* if the row is masked (initial settle window, or a warm-up window after
  the rule's activation trigger), the row is not checked;
* otherwise the rule's formula (optionally gated:
  ``gate -> formula``) is evaluated three-valued at ``i``.

A rule is **violated** if, after intent filters, at least one violation
run remains.  A rule whose raw violations are all dismissed by its
filters reports satisfied — the filters exist precisely to encode the
paper's "relax the rule when false positives are found" workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.ast import Formula, Implies
from repro.core.evaluator import (
    EvalContext,
    evaluate_formula,
    evaluate_robustness,
)
from repro.core.intent import IntentFilter, apply_filters
from repro.core.parser import parse_formula
from repro.core.robustness import (
    Bounds,
    RuleRobustness,
    float_to_json,
    summarize_bounds,
)
from repro.core.statemachine import StateMachine
from repro.core.types import (
    FALSE_CODE,
    TRUE_CODE,
    UNKNOWN_CODE,
    Verdict,
    summarize_codes,
)
from repro.core.violations import (
    NearMiss,
    Violation,
    annotate_margins,
    extract_violations,
)
from repro.core.warmup import WarmupSpec
from repro.errors import SpecError
from repro.logs.trace import BatchTraceView, Trace, TraceView
from repro.obs import get_registry

#: Default monitor sampling period — the vehicle's fast message period.
DEFAULT_PERIOD = 0.02


def as_formula(formula: Union[str, Formula]) -> Formula:
    """Accept a formula object or source text."""
    return parse_formula(formula) if isinstance(formula, str) else formula


@dataclass(frozen=True)
class Rule:
    """One monitored safety property.

    Attributes:
        rule_id: short identifier (e.g. ``"rule3"``).
        name: human-readable title.
        formula: the property, checked at every unmasked row.
        gate: optional guard; rows where the gate is false are vacuously
            satisfied (the property is only meaningful under the gate,
            e.g. while the ACC is enabled).
        warmup: optional §V-C2 warm-up suppression.
        initial_settle: seconds at the start of the trace left unchecked
            (power-on transients, first updates of slow signals).
        filters: intent-approximation filters applied to violations.
        description: what the rule protects against.
    """

    rule_id: str
    name: str
    formula: Formula
    gate: Optional[Formula] = None
    warmup: Optional[WarmupSpec] = None
    initial_settle: float = 0.0
    filters: Tuple[IntentFilter, ...] = ()
    description: str = ""

    @classmethod
    def from_text(
        cls,
        rule_id: str,
        name: str,
        formula: str,
        gate: Optional[str] = None,
        warmup: Optional[WarmupSpec] = None,
        initial_settle: float = 0.0,
        filters: Tuple[IntentFilter, ...] = (),
        description: str = "",
    ) -> "Rule":
        """Build a rule from specification source text."""
        return cls(
            rule_id=rule_id,
            name=name,
            formula=parse_formula(formula),
            gate=parse_formula(gate) if gate else None,
            warmup=warmup,
            initial_settle=initial_settle,
            filters=filters,
            description=description,
        )

    def effective_formula(self) -> Formula:
        """The formula actually evaluated (gate folded in)."""
        if self.gate is None:
            return self.formula
        return Implies(self.gate, self.formula)

    def signals(self) -> Tuple[str, ...]:
        """All signals the rule needs from the trace."""
        names = list(self.effective_formula().signals())
        if self.warmup is not None:
            names.extend(self.warmup.trigger.signals())
        return tuple(dict.fromkeys(names))

    def machines(self) -> Tuple[str, ...]:
        """All state machines the rule references."""
        return self.effective_formula().machines()

    def relaxed(self, *filters: IntentFilter) -> "Rule":
        """A copy of this rule with extra intent filters attached."""
        return Rule(
            rule_id=self.rule_id,
            name=self.name,
            formula=self.formula,
            gate=self.gate,
            warmup=self.warmup,
            initial_settle=self.initial_settle,
            filters=self.filters + tuple(filters),
            description=self.description,
        )


@dataclass
class RuleResult:
    """Outcome of checking one rule against one trace."""

    rule: Rule
    verdict: Verdict
    violations: List[Violation]
    dismissed: List[Violation]
    rows_total: int
    rows_checked: int
    rows_masked: int
    rows_unknown: int
    #: Rule-level robustness interval; ``None`` unless the check ran
    #: with ``robustness=True``.
    robustness: Optional[RuleRobustness] = None
    #: Near-miss record for a passing rule whose margin fell at or
    #: under the configured threshold; ``None`` otherwise.
    near_miss: Optional[NearMiss] = None

    @property
    def violated(self) -> bool:
        """Whether any violation survived the intent filters."""
        return bool(self.violations)

    @property
    def letter(self) -> str:
        """The Table I letter: ``V`` if violated, else ``S``."""
        return "V" if self.violated else "S"


@dataclass
class MonitorReport:
    """All rule results for one checked trace.

    ``notes`` carries trace-level diagnostics that belong to no single
    rule — e.g. the online monitor reporting that required signals never
    arrived, so buffered data was never evaluated.
    """

    trace_name: str
    period: float
    duration: float
    results: Dict[str, RuleResult] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def result(self, rule_id: str) -> RuleResult:
        """Result for one rule."""
        try:
            return self.results[rule_id]
        except KeyError:
            raise SpecError("report has no rule %s" % rule_id) from None

    def letter(self, rule_id: str) -> str:
        """``S``/``V`` for one rule."""
        return self.result(rule_id).letter

    def letters(self) -> Dict[str, str]:
        """``S``/``V`` per rule id."""
        return {rule_id: r.letter for rule_id, r in self.results.items()}

    def violated_rules(self) -> List[str]:
        """Ids of all violated rules."""
        return [rid for rid, r in self.results.items() if r.violated]

    @property
    def all_satisfied(self) -> bool:
        """Whether no rule was violated."""
        return not self.violated_rules()

    def violation_count(self) -> int:
        """Total violations across rules (post-filter)."""
        return sum(len(r.violations) for r in self.results.values())

    def margins(self) -> Dict[str, RuleRobustness]:
        """Per-rule robustness intervals (rules checked with margins)."""
        return {
            rule_id: result.robustness
            for rule_id, result in self.results.items()
            if result.robustness is not None
        }

    def near_misses(self) -> List[NearMiss]:
        """All near-miss records, closest approach first."""
        return sorted(
            (
                result.near_miss
                for result in self.results.values()
                if result.near_miss is not None
            ),
            key=lambda near: near.margin,
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable digest of the report (for tooling/CI)."""
        return {
            "trace": self.trace_name,
            "period": self.period,
            "duration": self.duration,
            "all_satisfied": self.all_satisfied,
            "notes": list(self.notes),
            "rules": {
                rule_id: self._rule_dict(result)
                for rule_id, result in self.results.items()
            },
        }

    @staticmethod
    def _rule_dict(result: RuleResult) -> Dict[str, object]:
        digest: Dict[str, object] = {
            "name": result.rule.name,
            "letter": result.letter,
            "verdict": result.verdict.name,
            "violations": [
                {
                    "start_time": violation.start_time,
                    "end_time": violation.end_time,
                    "rows": violation.rows,
                    "severity": violation.severity.value,
                    "witness": dict(violation.witness),
                    "margin": float_to_json(violation.margin),
                }
                for violation in result.violations
            ],
            "dismissed": len(result.dismissed),
            "rows_checked": result.rows_checked,
            "rows_masked": result.rows_masked,
            "rows_unknown": result.rows_unknown,
        }
        if result.robustness is not None:
            digest["robustness"] = result.robustness.to_dict()
        if result.near_miss is not None:
            digest["near_miss"] = result.near_miss.to_dict()
        return digest

    def summary(self) -> str:
        """Human-readable per-rule table.

        When the check ran with margins, each row gains a robustness
        column (the interval, or the point margin once decided) and
        near misses are listed after the table.
        """
        with_margins = bool(self.margins())
        lines = [
            "trace %r  (%.1f s at %.0f ms)"
            % (self.trace_name, self.duration, self.period * 1000.0),
        ]
        header = "%-8s %-7s %-10s %-10s" % (
            "rule", "letter", "violations", "dismissed",
        )
        if with_margins:
            header += " %-22s" % "robustness"
        lines.append(header + " name")
        for rule_id in sorted(self.results):
            result = self.results[rule_id]
            row = "%-8s %-7s %-10d %-10d" % (
                rule_id,
                result.letter,
                len(result.violations),
                len(result.dismissed),
            )
            if with_margins:
                row += " %-22s" % (
                    "-" if result.robustness is None
                    else str(result.robustness)
                )
            lines.append(row + " " + result.rule.name)
        for near in self.near_misses():
            lines.append("near miss: %s" % near)
        for note in self.notes:
            lines.append("note: %s" % note)
        return "\n".join(lines)


class Monitor:
    """A passive, bolt-on test monitor over a set of rules."""

    def __init__(
        self,
        rules: Sequence[Rule],
        machines: Sequence[StateMachine] = (),
        period: float = DEFAULT_PERIOD,
        strict: bool = False,
        database=None,
        memo: bool = True,
    ) -> None:
        ids = [rule.rule_id for rule in rules]
        if len(set(ids)) != len(ids):
            raise SpecError("duplicate rule ids: %s" % ids)
        self.rules: List[Rule] = list(rules)
        self.machines: List[StateMachine] = list(machines)
        self.period = period
        #: Memoize shared subformulas across rules (see EvalContext);
        #: off is only useful for benchmarking the ablation.
        self.memo = memo
        machine_names = {machine.name for machine in self.machines}
        for rule in self.rules:
            for name in rule.machines():
                if name not in machine_names:
                    raise SpecError(
                        "rule %s references undefined state machine %r"
                        % (rule.rule_id, name)
                    )
        if strict:
            self._require_lint_clean(database)

    def _require_lint_clean(self, database) -> None:
        """Strict mode: reject error-level static-analysis findings."""
        from repro.analysis import Severity, lint_rules

        errors = [
            diagnostic
            for diagnostic in lint_rules(
                self.rules,
                machines=self.machines,
                database=database,
                period=self.period,
            )
            if diagnostic.severity is Severity.ERROR
        ]
        if errors:
            raise SpecError(
                "monitor rules failed strict lint with %d error(s):\n%s"
                % (len(errors), "\n".join(d.format() for d in errors))
            )

    def required_signals(self) -> Tuple[str, ...]:
        """All trace signals needed by rules and machine guards."""
        names: List[str] = []
        for rule in self.rules:
            names.extend(rule.signals())
        for machine in self.machines:
            names.extend(machine.signals())
        return tuple(dict.fromkeys(names))

    def check(
        self,
        trace: Trace,
        start: Optional[float] = None,
        end: Optional[float] = None,
        robustness: bool = False,
        near_miss_threshold: Optional[float] = None,
    ) -> MonitorReport:
        """Check every rule against ``trace`` and build a report.

        With ``robustness=True`` each rule additionally gets its
        quantitative margin interval (see
        :mod:`repro.core.robustness`) and each violation its depth;
        ``near_miss_threshold`` then flags passing rules whose certain
        margin bound is at most the threshold.  The boolean verdicts
        and letters are bit-identical either way — the numeric lattice
        runs beside the boolean one, never instead of it.
        """
        view = trace.to_view(
            self.period,
            signals=self.required_signals(),
            start=start,
            end=end,
        )
        return self.check_view(
            view,
            trace_name=trace.name,
            robustness=robustness,
            near_miss_threshold=near_miss_threshold,
        )

    def check_view(
        self,
        view: TraceView,
        trace_name: str = "",
        robustness: bool = False,
        near_miss_threshold: Optional[float] = None,
    ) -> MonitorReport:
        """Check every rule against an already-built view."""
        if near_miss_threshold is not None:
            if near_miss_threshold < 0:
                raise SpecError(
                    "near_miss_threshold must be non-negative, got %r"
                    % (near_miss_threshold,)
                )
            robustness = True
        registry = get_registry()
        registry.counter("monitor.checks").inc()
        ctx = EvalContext(view, memo=self.memo)
        with registry.span("monitor.machines"):
            for machine in self.machines:
                ctx.machine_states[machine.name] = machine.run(ctx)
                ctx.machine_alphabets[machine.name] = machine.alphabet
        report = MonitorReport(
            trace_name=trace_name,
            period=view.period,
            duration=view.end_time - view.start_time,
        )
        for rule in self.rules:
            with registry.span("monitor.rule.%s" % rule.rule_id):
                report.results[rule.rule_id] = self._check_rule(
                    rule,
                    ctx,
                    robustness=robustness,
                    near_miss_threshold=near_miss_threshold,
                )
        return report

    # ------------------------------------------------------------------

    def _check_rule(
        self,
        rule: Rule,
        ctx: EvalContext,
        robustness: bool = False,
        near_miss_threshold: Optional[float] = None,
    ) -> RuleResult:
        codes = evaluate_formula(rule.effective_formula(), ctx).copy()
        masked = self._rule_mask(rule, ctx)
        codes[masked] = TRUE_CODE
        bounds = (
            evaluate_robustness(rule.effective_formula(), ctx)
            if robustness
            else None
        )
        assert isinstance(ctx.view, TraceView)
        return self._finish_rule(
            rule, codes, masked, ctx.view, ctx, bounds, near_miss_threshold
        )

    def _rule_mask(self, rule: Rule, ctx: EvalContext) -> np.ndarray:
        """Rows the rule does not check (settle window + warm-up)."""
        masked = np.zeros(ctx.shape, dtype=bool)
        if rule.initial_settle > 0:
            settle_rows = int(round(rule.initial_settle / ctx.view.period))
            masked[..., : settle_rows + 1] = True
        if rule.warmup is not None:
            masked |= rule.warmup.mask(ctx)
        return masked

    def _finish_rule(
        self,
        rule: Rule,
        codes: np.ndarray,
        masked: np.ndarray,
        view: TraceView,
        filter_ctx: EvalContext,
        bounds: Optional[Bounds],
        near_miss_threshold: Optional[float],
    ) -> RuleResult:
        """Per-trace postprocessing shared by the single and batched
        paths: violation extraction, intent filtering, verdict, margins.

        ``codes``/``masked`` are this trace's 1-D arrays (a row of the
        batch, for :meth:`check_batch`); ``filter_ctx`` evaluates the
        intent filters' expressions over this trace's own view.
        """
        # Witness columns are only materialized when a violation exists —
        # the common all-satisfied rule pays nothing for them.
        if (codes == FALSE_CODE).any():
            witness_signals = {
                name: view.values(name)
                for name in rule.signals()
                if name in view
            }
            raw = extract_violations(
                codes, view.times, rule.rule_id, view.period, witness_signals
            )
        else:
            raw = []
        kept, dropped = apply_filters(raw, rule.filters, filter_ctx)

        if kept:
            verdict = Verdict.FALSE
        elif raw:
            # All violations dismissed as not reflecting real intent.
            verdict = Verdict.TRUE
        else:
            verdict = summarize_codes(codes)

        rule_robustness: Optional[RuleRobustness] = None
        near_miss = None
        if bounds is not None:
            lower = bounds.lower.copy()
            upper = bounds.upper.copy()
            # Masked rows are neutral in the numeric lattice too — they
            # cannot be the rule's minimum, exactly as the boolean path
            # forces them TRUE.
            lower[masked] = np.inf
            upper[masked] = np.inf
            rule_robustness = summarize_bounds(lower, upper, view.times)
            kept = annotate_margins(kept, upper)
            dropped = annotate_margins(dropped, upper)
            near_miss = _detect_near_miss(
                rule.rule_id, rule_robustness, kept, near_miss_threshold
            )

        result = RuleResult(
            rule=rule,
            verdict=verdict,
            violations=kept,
            dismissed=dropped,
            rows_total=view.n_rows,
            rows_checked=int((~masked).sum()),
            rows_masked=int(masked.sum()),
            rows_unknown=int((codes == UNKNOWN_CODE).sum()),
            robustness=rule_robustness,
            near_miss=near_miss,
        )
        registry = get_registry()
        registry.counter("monitor.rows_checked").inc(result.rows_checked)
        registry.counter("monitor.rows_masked").inc(result.rows_masked)
        registry.counter("monitor.violations").inc(len(kept))
        registry.counter("monitor.dismissed").inc(len(dropped))
        if bounds is not None:
            registry.counter("monitor.margins").inc()
            if near_miss is not None:
                registry.counter("monitor.near_misses").inc()
        return result

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------

    def check_batch(
        self,
        traces: Iterable,
        rules: Optional[Sequence[Rule]] = None,
        robustness: bool = False,
        near_miss_threshold: Optional[float] = None,
    ) -> List[MonitorReport]:
        """Check many traces with one vectorized pass per rule.

        ``traces`` is any iterable of trace-likes — in-memory
        :class:`~repro.logs.trace.Trace` objects or an opened
        :class:`~repro.logs.store.TraceStore` (whose
        :class:`~repro.logs.store.StoredTrace` members resample straight
        off the memory mapping).  Traces with equal row counts are
        stacked into a :class:`~repro.logs.trace.BatchTraceView` and
        every rule is evaluated once over the 2-D ``(trace, row)``
        columns; ragged row counts fall back to the per-trace path.
        Reports come back in input order and are **byte-identical** to
        ``[self.check(t) for t in traces]`` either way — the batched
        kernels compute the same values row for row, and all per-trace
        postprocessing (violation runs, intent filters, margins) runs on
        each trace's own slice.

        Monitors with state machines fall back entirely: machine state
        advances row by row per trace, so there is nothing to stack.
        ``rules`` restricts checking to a subset (defaults to all).
        """
        trace_list = list(traces)
        if rules is not None:
            sub = Monitor(
                rules,
                machines=self.machines,
                period=self.period,
                memo=self.memo,
            )
            return sub.check_batch(
                trace_list,
                robustness=robustness,
                near_miss_threshold=near_miss_threshold,
            )
        registry = get_registry()
        reports: List[Optional[MonitorReport]] = [None] * len(trace_list)
        if self.machines:
            registry.counter("monitor.batch.fallback_traces").inc(
                len(trace_list)
            )
            for i, trace in enumerate(trace_list):
                reports[i] = self.check(
                    trace,
                    robustness=robustness,
                    near_miss_threshold=near_miss_threshold,
                )
            return reports  # type: ignore[return-value]
        signals = self.required_signals()
        views = [
            trace.to_view(self.period, signals=signals)
            for trace in trace_list
        ]
        groups: Dict[int, List[int]] = {}
        for i, view in enumerate(views):
            groups.setdefault(view.n_rows, []).append(i)
        for indices in groups.values():
            if len(indices) == 1:
                i = indices[0]
                registry.counter("monitor.batch.fallback_traces").inc()
                reports[i] = self.check_view(
                    views[i],
                    trace_name=trace_list[i].name,
                    robustness=robustness,
                    near_miss_threshold=near_miss_threshold,
                )
                continue
            registry.counter("monitor.batch.groups").inc()
            registry.counter("monitor.checks").inc(len(indices))
            group_views = [views[i] for i in indices]
            batch = BatchTraceView(group_views)
            bctx = EvalContext(batch, memo=self.memo)
            group_reports = [
                MonitorReport(
                    trace_name=trace_list[i].name,
                    period=view.period,
                    duration=view.end_time - view.start_time,
                )
                for i, view in zip(indices, group_views)
            ]
            # Per-trace contexts are created lazily — only traces whose
            # raw violations meet an intent filter ever need one.
            filter_ctxs: Dict[int, EvalContext] = {}
            for rule in self.rules:
                with registry.span("monitor.rule.%s" % rule.rule_id):
                    results = self._check_rule_batch(
                        rule,
                        bctx,
                        group_views,
                        filter_ctxs,
                        robustness=robustness,
                        near_miss_threshold=near_miss_threshold,
                    )
                for report, result in zip(group_reports, results):
                    report.results[rule.rule_id] = result
            for i, report in zip(indices, group_reports):
                reports[i] = report
        return reports  # type: ignore[return-value]

    def _check_rule_batch(
        self,
        rule: Rule,
        bctx: EvalContext,
        views: Sequence[TraceView],
        filter_ctxs: Dict[int, EvalContext],
        robustness: bool,
        near_miss_threshold: Optional[float],
    ) -> List[RuleResult]:
        """One vectorized rule evaluation over a stacked batch."""
        codes2 = evaluate_formula(rule.effective_formula(), bctx).copy()
        masked2 = self._rule_mask(rule, bctx)
        codes2[masked2] = TRUE_CODE
        bounds2 = (
            evaluate_robustness(rule.effective_formula(), bctx)
            if robustness
            else None
        )
        results = []
        for t, view in enumerate(views):
            if rule.filters:
                filter_ctx = filter_ctxs.get(t)
                if filter_ctx is None:
                    filter_ctx = EvalContext(view, memo=self.memo)
                    filter_ctxs[t] = filter_ctx
            else:
                filter_ctx = bctx  # never consulted without filters
            bounds = (
                Bounds(bounds2.lower[t], bounds2.upper[t])
                if bounds2 is not None
                else None
            )
            results.append(
                self._finish_rule(
                    rule,
                    codes2[t],
                    masked2[t],
                    view,
                    filter_ctx,
                    bounds,
                    near_miss_threshold,
                )
            )
        return results


def _detect_near_miss(
    rule_id: str,
    robustness: RuleRobustness,
    kept: List[Violation],
    threshold: Optional[float],
) -> Optional[NearMiss]:
    """The near-miss policy shared by the offline and online monitors.

    Only *passing* rules (letter ``S``) can near-miss — a violated rule
    is reported through its violations, margin-annotated.  The certain
    margin bound must be finite (an ``inf`` bound means nothing metric
    was ever at stake) and at most the threshold.  ``crossed`` marks a
    negative margin: the raw formula failed somewhere, but intent
    filters dismissed every run.
    """
    if threshold is None or kept:
        return None
    margin = robustness.upper
    if not np.isfinite(margin) or margin > threshold:
        return None
    return NearMiss(
        rule_id=rule_id,
        margin=margin,
        time=robustness.worst_time,
        row=robustness.worst_row,
        threshold=threshold,
        crossed=margin < 0.0,
    )
