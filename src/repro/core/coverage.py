"""Monitoring coverage analysis.

Section III-C: "expert derived rules may not provide as clear a notion of
monitoring coverage" as requirement-derived ones.  This module makes the
coverage a rule set *does* achieve measurable, along two axes:

* **Row coverage** — per rule: how much of the trace was actually
  checked (not masked), how often its gate admitted checking, and how
  often its premise was exercised.  A rule whose premise never fires has
  verified nothing, however green its column looks.
* **Signal coverage** — which of the broadcast signals the rule set
  references at all.  Broadcast state no rule reads is observability the
  monitor is leaving on the table (§V-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ast import Implies
from repro.core.evaluator import EvalContext, evaluate_formula
from repro.core.monitor import Monitor, Rule
from repro.core.types import TRUE_CODE
from repro.logs.trace import Trace


@dataclass(frozen=True)
class RuleCoverage:
    """How thoroughly one rule exercised one trace."""

    rule_id: str
    rows_total: int
    rows_checked: int
    rows_gate_active: int
    rows_premise_active: int

    @property
    def checked_fraction(self) -> float:
        """Fraction of rows not masked away."""
        return self.rows_checked / self.rows_total if self.rows_total else 0.0

    @property
    def gate_fraction(self) -> float:
        """Fraction of checked rows where the gate admitted checking."""
        if self.rows_checked == 0:
            return 0.0
        return self.rows_gate_active / self.rows_checked

    @property
    def premise_fraction(self) -> float:
        """Fraction of checked rows where the rule's premise held —
        the rows on which the rule actually verified something."""
        if self.rows_checked == 0:
            return 0.0
        return self.rows_premise_active / self.rows_checked

    @property
    def vacuous(self) -> bool:
        """True when the premise never fired: the rule verified nothing."""
        return self.rows_premise_active == 0


@dataclass
class CoverageReport:
    """Coverage of a rule set over one trace."""

    rules: Dict[str, RuleCoverage]
    referenced_signals: Tuple[str, ...]
    unmonitored_signals: Tuple[str, ...]

    @property
    def signal_coverage(self) -> float:
        """Fraction of broadcast signals referenced by at least one rule."""
        total = len(self.referenced_signals) + len(self.unmonitored_signals)
        return len(self.referenced_signals) / total if total else 0.0

    def vacuous_rules(self) -> List[str]:
        """Rules whose premise never fired on this trace."""
        return [
            rule_id
            for rule_id, coverage in self.rules.items()
            if coverage.vacuous
        ]

    def summary(self) -> str:
        """Human-readable coverage table."""
        lines = [
            "%-10s %-9s %-9s %-9s %s"
            % ("rule", "checked", "gated-in", "premise", "note"),
            "-" * 52,
        ]
        for rule_id in sorted(self.rules):
            coverage = self.rules[rule_id]
            note = "VACUOUS" if coverage.vacuous else ""
            lines.append(
                "%-10s %7.1f%% %7.1f%% %7.1f%%  %s"
                % (
                    rule_id,
                    100 * coverage.checked_fraction,
                    100 * coverage.gate_fraction,
                    100 * coverage.premise_fraction,
                    note,
                )
            )
        lines.append("")
        lines.append(
            "signal coverage: %.0f%% (%d referenced, %d unmonitored%s)"
            % (
                100 * self.signal_coverage,
                len(self.referenced_signals),
                len(self.unmonitored_signals),
                ": " + ", ".join(self.unmonitored_signals)
                if self.unmonitored_signals
                else "",
            )
        )
        return "\n".join(lines)


def coverage_report(monitor: Monitor, trace: Trace) -> CoverageReport:
    """Measure ``monitor``'s rule coverage over ``trace``."""
    view = trace.to_view(monitor.period, signals=monitor.required_signals())
    ctx = EvalContext(view)
    for machine in monitor.machines:
        ctx.machine_states[machine.name] = machine.run(ctx)
        ctx.machine_alphabets[machine.name] = machine.alphabet

    per_rule: Dict[str, RuleCoverage] = {}
    for rule in monitor.rules:
        per_rule[rule.rule_id] = _rule_coverage(rule, ctx)

    referenced = set(monitor.required_signals())
    available = set(trace.signals())
    return CoverageReport(
        rules=per_rule,
        referenced_signals=tuple(sorted(referenced & available)),
        unmonitored_signals=tuple(sorted(available - referenced)),
    )


def _rule_coverage(rule: Rule, ctx: EvalContext) -> RuleCoverage:
    view = ctx.view
    masked = np.zeros(view.n_rows, dtype=bool)
    if rule.initial_settle > 0:
        settle_rows = int(round(rule.initial_settle / view.period))
        masked[: settle_rows + 1] = True
    if rule.warmup is not None:
        masked |= rule.warmup.mask(ctx)
    checked = ~masked

    if rule.gate is not None:
        gate_codes = evaluate_formula(rule.gate, ctx)
        gate_active = checked & (gate_codes == TRUE_CODE)
    else:
        gate_active = checked.copy()

    # The premise of an implication-shaped formula; other shapes count
    # every gated-in row as exercised.
    if isinstance(rule.formula, Implies):
        premise_codes = evaluate_formula(rule.formula.left, ctx)
        premise_active = gate_active & (premise_codes == TRUE_CODE)
    else:
        premise_active = gate_active

    return RuleCoverage(
        rule_id=rule.rule_id,
        rows_total=view.n_rows,
        rows_checked=int(checked.sum()),
        rows_gate_active=int(gate_active.sum()),
        rows_premise_active=int(premise_active.sum()),
    )
