"""Abstract syntax of the specification language.

The language is the one the paper describes (§III): "a simplified bounded
temporal logic loosely based on MTL", with "the usual boolean connectives,
arithmetic comparisons, and two bounded temporal operators (always and
eventually)", combined with state machines for mode-based state (§V-B) —
nesting of temporal operators is avoided by moving modal state into the
machines.

Two node families exist:

* **expressions** evaluate to a number per trace row (signal references,
  arithmetic, and trace-aware functions such as ``delta`` and ``rate``);
* **formulas** evaluate to a three-valued verdict per trace row.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Tuple, Union


def _node_children(node: object) -> Tuple["Node", ...]:
    """Direct child nodes of a dataclass AST node, in field order.

    This is the walker hook: every node exposes its sub-expressions and
    sub-formulas uniformly, so generic traversals (the static analyzer's
    visitor, pretty-printers, metrics) need no per-class dispatch.
    """
    return tuple(
        value
        for value in (getattr(node, f.name) for f in fields(node))
        if isinstance(value, (Expr, Formula))
    )


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class Expr:
    """Base class of numeric expressions."""

    def signals(self) -> Tuple[str, ...]:
        """Names of all signals this expression references."""
        return ()

    def children(self) -> Tuple["Node", ...]:
        """Direct child nodes (sub-expressions), in field order."""
        return _node_children(self)


@dataclass(frozen=True)
class Constant(Expr):
    """A numeric literal."""

    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class SignalRef(Expr):
    """The held value of a signal at the current row."""

    name: str

    def signals(self) -> Tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Unary(Expr):
    """Unary arithmetic: ``-e`` or ``abs(e)``."""

    op: str  # "-" | "abs"
    operand: Expr

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals()

    def __str__(self) -> str:
        if self.op == "-":
            return "-%s" % (self.operand,)
        return "%s(%s)" % (self.op, self.operand)


@dataclass(frozen=True)
class Binary(Expr):
    """Binary arithmetic: ``+ - * /`` and two-argument ``min``/``max``."""

    op: str  # "+" | "-" | "*" | "/" | "min" | "max"
    left: Expr
    right: Expr

    def signals(self) -> Tuple[str, ...]:
        return self.left.signals() + self.right.signals()

    def __str__(self) -> str:
        if self.op in ("min", "max"):
            return "%s(%s, %s)" % (self.op, self.left, self.right)
        return "(%s %s %s)" % (self.left, self.op, self.right)


@dataclass(frozen=True)
class TraceFunc(Expr):
    """A trace-aware function of one signal.

    ``kind`` is one of:

    * ``delta`` — freshness-aware difference between the two most recent
      fresh samples (the §V-C1 multi-rate fix), held between updates;
    * ``delta_naive`` — naive held-value difference between consecutive
      rows (kept for the E4 ablation);
    * ``rate`` — freshness-aware difference per second;
    * ``prev`` — the held value at the previous row;
    * ``age`` — rows elapsed since the signal was last fresh.
    """

    kind: str
    signal: str

    def signals(self) -> Tuple[str, ...]:
        return (self.signal,)

    def __str__(self) -> str:
        return "%s(%s)" % (self.kind, self.signal)


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------


class Formula:
    """Base class of three-valued formulas."""

    def signals(self) -> Tuple[str, ...]:
        """Names of all signals this formula references."""
        return ()

    def machines(self) -> Tuple[str, ...]:
        """Names of all state machines this formula references."""
        return ()

    def has_temporal(self) -> bool:
        """Whether this formula contains a temporal operator."""
        return False

    def children(self) -> Tuple["Node", ...]:
        """Direct child nodes (operands, in field order)."""
        return _node_children(self)

    def atoms(self) -> Tuple["Formula", ...]:
        """Atomic subformulas, deduplicated, in first-occurrence order.

        An *atom* is a formula whose truth at a row depends only on
        that row's values, freshness and machine state — comparisons,
        boolean signal reads, ``fresh()`` and ``in_state()``.  This is
        the alphabet-extraction hook for the symbolic automata
        compiler: letters of the compiled automaton are truth
        assignments to exactly these nodes.
        """
        out = []
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, ATOMIC_FORMULAS):
                if node not in seen:
                    seen.add(node)
                    out.append(node)
                continue
            children = [
                child
                for child in node.children()
                if isinstance(child, Formula)
            ]
            stack.extend(reversed(children))
        return tuple(out)


@dataclass(frozen=True)
class BoolConst(Formula):
    """``true`` or ``false``."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class SignalPredicate(Formula):
    """A boolean signal used as an atom (true when its value is nonzero)."""

    name: str

    def signals(self) -> Tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Fresh(Formula):
    """True on rows where the signal received a new update."""

    name: str

    def signals(self) -> Tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return "fresh(%s)" % self.name


@dataclass(frozen=True)
class Comparison(Formula):
    """An arithmetic comparison between two expressions.

    Comparisons involving NaN evaluate FALSE (IEEE semantics): a corrupted
    value never *satisfies* a bound, and the negated comparison is also
    FALSE — rule authors are expected to write the dangerous direction as
    the violation condition.
    """

    op: str  # "<" | "<=" | ">" | ">=" | "==" | "!="
    left: Expr
    right: Expr

    def signals(self) -> Tuple[str, ...]:
        return self.left.signals() + self.right.signals()

    def __str__(self) -> str:
        return "%s %s %s" % (self.left, self.op, self.right)


@dataclass(frozen=True)
class Not(Formula):
    """Three-valued negation."""

    operand: Formula

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals()

    def machines(self) -> Tuple[str, ...]:
        return self.operand.machines()

    def has_temporal(self) -> bool:
        return self.operand.has_temporal()

    def __str__(self) -> str:
        return "not (%s)" % (self.operand,)


@dataclass(frozen=True)
class And(Formula):
    """Three-valued conjunction."""

    left: Formula
    right: Formula

    def signals(self) -> Tuple[str, ...]:
        return self.left.signals() + self.right.signals()

    def machines(self) -> Tuple[str, ...]:
        return self.left.machines() + self.right.machines()

    def has_temporal(self) -> bool:
        return self.left.has_temporal() or self.right.has_temporal()

    def __str__(self) -> str:
        return "(%s and %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Or(Formula):
    """Three-valued disjunction."""

    left: Formula
    right: Formula

    def signals(self) -> Tuple[str, ...]:
        return self.left.signals() + self.right.signals()

    def machines(self) -> Tuple[str, ...]:
        return self.left.machines() + self.right.machines()

    def has_temporal(self) -> bool:
        return self.left.has_temporal() or self.right.has_temporal()

    def __str__(self) -> str:
        return "(%s or %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Implies(Formula):
    """Three-valued material implication (``->``)."""

    left: Formula
    right: Formula

    def signals(self) -> Tuple[str, ...]:
        return self.left.signals() + self.right.signals()

    def machines(self) -> Tuple[str, ...]:
        return self.left.machines() + self.right.machines()

    def has_temporal(self) -> bool:
        return self.left.has_temporal() or self.right.has_temporal()

    def __str__(self) -> str:
        return "(%s -> %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Always(Formula):
    """Bounded always: the operand holds at every row within
    ``[lo, hi]`` seconds from now."""

    lo: float
    hi: float
    operand: Formula

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals()

    def machines(self) -> Tuple[str, ...]:
        return self.operand.machines()

    def has_temporal(self) -> bool:
        return True

    def __str__(self) -> str:
        return "always[%r, %r] (%s)" % (self.lo, self.hi, self.operand)


@dataclass(frozen=True)
class Eventually(Formula):
    """Bounded eventually: the operand holds at some row within
    ``[lo, hi]`` seconds from now."""

    lo: float
    hi: float
    operand: Formula

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals()

    def machines(self) -> Tuple[str, ...]:
        return self.operand.machines()

    def has_temporal(self) -> bool:
        return True

    def __str__(self) -> str:
        return "eventually[%r, %r] (%s)" % (self.lo, self.hi, self.operand)


@dataclass(frozen=True)
class Once(Formula):
    """Bounded past: the operand held at some row within ``[lo, hi]``
    seconds *before* now (UNKNOWN where the window precedes the trace)."""

    lo: float
    hi: float
    operand: Formula

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals()

    def machines(self) -> Tuple[str, ...]:
        return self.operand.machines()

    def has_temporal(self) -> bool:
        return True

    def __str__(self) -> str:
        return "once[%r, %r] (%s)" % (self.lo, self.hi, self.operand)


@dataclass(frozen=True)
class Historically(Formula):
    """Bounded past: the operand held at every row within ``[lo, hi]``
    seconds before now."""

    lo: float
    hi: float
    operand: Formula

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals()

    def machines(self) -> Tuple[str, ...]:
        return self.operand.machines()

    def has_temporal(self) -> bool:
        return True

    def __str__(self) -> str:
        return "historically[%r, %r] (%s)" % (self.lo, self.hi, self.operand)


@dataclass(frozen=True)
class Next(Formula):
    """The operand holds at the next row (UNKNOWN at the last row)."""

    operand: Formula

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals()

    def machines(self) -> Tuple[str, ...]:
        return self.operand.machines()

    def has_temporal(self) -> bool:
        return True

    def __str__(self) -> str:
        return "next (%s)" % (self.operand,)


@dataclass(frozen=True)
class InState(Formula):
    """True while the named state machine is in the named state."""

    machine: str
    state: str

    def machines(self) -> Tuple[str, ...]:
        return (self.machine,)

    def __str__(self) -> str:
        return "in_state(%s, %s)" % (self.machine, self.state)


Node = Union[Expr, Formula]


# ----------------------------------------------------------------------
# Cached structural hashing
# ----------------------------------------------------------------------
#
# AST nodes are immutable, so their structural hash never changes — but
# the dataclass-generated ``__hash__`` rehashes the whole subtree on
# every call, which makes hash-keyed memo tables (the evaluator's
# cross-rule subformula cache) O(tree) per lookup.  Each node therefore
# caches its hash on first use.  The cached value is *per-process*
# (Python string hashing is randomized), so it is excluded from pickles:
# a node shipped to a campaign worker recomputes its hash there.

_HASH_SLOT = "_structural_hash"


def _install_structural_cache(cls: type) -> None:
    generated_hash = cls.__hash__

    def __hash__(self) -> int:
        try:
            return object.__getattribute__(self, _HASH_SLOT)
        except AttributeError:
            value = generated_hash(self)
            object.__setattr__(self, _HASH_SLOT, value)
            return value

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop(_HASH_SLOT, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    cls.__hash__ = __hash__
    cls.__getstate__ = __getstate__
    cls.__setstate__ = __setstate__


#: Formula classes whose truth depends only on the current row (given
#: machine state): the predicate-alphabet atoms of the automata pass.
ATOMIC_FORMULAS = (SignalPredicate, Fresh, Comparison, InState)


for _cls in (
    Constant,
    SignalRef,
    Unary,
    Binary,
    TraceFunc,
    BoolConst,
    SignalPredicate,
    Fresh,
    Comparison,
    Not,
    And,
    Or,
    Implies,
    Always,
    Eventually,
    Once,
    Historically,
    Next,
    InState,
):
    _install_structural_cache(_cls)
del _cls
