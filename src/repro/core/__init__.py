"""The monitor core — the paper's primary contribution.

A specification language (simplified bounded MTL plus state machines),
an offline trace evaluator with three-valued verdicts, multi-rate and
warm-up handling, intent-approximation filters, and the monitor/oracle
built on top.
"""

from repro.core.ast import (
    Always,
    And,
    Binary,
    BoolConst,
    Comparison,
    Constant,
    Eventually,
    Expr,
    Formula,
    Fresh,
    Historically,
    Implies,
    InState,
    Next,
    Once,
    Not,
    Or,
    SignalPredicate,
    SignalRef,
    TraceFunc,
    Unary,
)
from repro.core.coverage import CoverageReport, RuleCoverage, coverage_report
from repro.core.evaluator import (
    EvalContext,
    evaluate_expr,
    evaluate_formula,
    future_reach,
    past_reach,
)
from repro.core.intent import (
    DurationFilter,
    IntentFilter,
    MagnitudeFilter,
    PersistenceFilter,
    apply_filters,
)
from repro.core.monitor import (
    DEFAULT_PERIOD,
    Monitor,
    MonitorReport,
    Rule,
    RuleResult,
    as_formula,
)
from repro.core.online import OnlineMonitor
from repro.core.oracle import OracleResult, OracleVerdict, TestOracle
from repro.core.parser import parse_expr, parse_formula
from repro.core.resampler import (
    TrendComparison,
    compare_trends,
    update_interval_histogram,
)
from repro.core.specfile import (
    SpecOrigin,
    SpecSet,
    dump_specs,
    dumps_specs,
    load_specs,
    loads_specs,
)
from repro.core.statemachine import StateMachine, Transition
from repro.core.types import Verdict, summarize_codes
from repro.core.violations import (
    Severity,
    Violation,
    extract_violations,
    merge_close,
)
from repro.core.warmup import WarmupSpec, activation_warmup
from repro.core.windows import (
    KERNELS,
    active_kernel,
    bounds_to_rows,
    future_aggregate,
    past_aggregate,
    set_kernel,
    sliding_extreme,
    use_kernel,
)

__all__ = [
    "Always",
    "And",
    "Binary",
    "BoolConst",
    "Comparison",
    "Constant",
    "CoverageReport",
    "DEFAULT_PERIOD",
    "DurationFilter",
    "EvalContext",
    "Eventually",
    "Expr",
    "Formula",
    "Fresh",
    "Historically",
    "Implies",
    "InState",
    "IntentFilter",
    "KERNELS",
    "MagnitudeFilter",
    "Monitor",
    "MonitorReport",
    "Next",
    "Not",
    "Once",
    "OnlineMonitor",
    "Or",
    "OracleResult",
    "OracleVerdict",
    "PersistenceFilter",
    "Rule",
    "RuleCoverage",
    "RuleResult",
    "Severity",
    "SignalPredicate",
    "SignalRef",
    "SpecOrigin",
    "SpecSet",
    "StateMachine",
    "TestOracle",
    "TraceFunc",
    "Transition",
    "TrendComparison",
    "Unary",
    "Verdict",
    "Violation",
    "WarmupSpec",
    "activation_warmup",
    "active_kernel",
    "apply_filters",
    "as_formula",
    "bounds_to_rows",
    "compare_trends",
    "coverage_report",
    "evaluate_expr",
    "evaluate_formula",
    "future_aggregate",
    "future_reach",
    "past_aggregate",
    "past_reach",
    "dump_specs",
    "dumps_specs",
    "extract_violations",
    "load_specs",
    "loads_specs",
    "merge_close",
    "parse_expr",
    "parse_formula",
    "set_kernel",
    "sliding_extreme",
    "summarize_codes",
    "update_interval_histogram",
    "use_kernel",
]
