"""Quantitative robustness — the numeric lattice beside the boolean one.

The boolean evaluator answers *whether* each row satisfies a formula;
this module defines the types for *how far* it is from the boundary, in
the style of STL robust satisfaction degrees (Deshmukh et al., *Robust
Online Monitoring of STL*).  Because truncated temporal windows make
some rows undecidable, a row's robustness is not a point but an interval
``[lower, upper]``:

* ``lower == upper``      — the row is decided; the common value is the
  classic robustness degree ρ.
* ``lower < upper``       — evidence is incomplete (UNKNOWN padding or a
  masked region contributed); ρ lies somewhere inside the interval.

The invariant tying the two lattices together — checked exhaustively by
the differential test harness — is *sign consistency* with the
three-valued verdict codes:

* ``TRUE``    ⇒ ``lower ≥ 0`` (and hence ``upper ≥ 0``),
* ``FALSE``   ⇒ ``upper ≤ 0`` (and hence ``lower ≤ 0``),
* ``UNKNOWN`` ⇒ ``lower ≤ 0 ≤ upper``;

equivalently ``lower > 0 ⇒ TRUE`` and ``upper < 0 ⇒ FALSE``.  Infinities
are first-class citizens of the lattice (boolean atoms have no metric, a
vacuous ``always`` over an empty window is infinitely robust); NaN is
*never* a legal bound, and the JSON helpers below enforce that at every
serialization boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, NamedTuple, Optional

import numpy as np


class Bounds(NamedTuple):
    """Per-row robustness interval arrays for one formula node.

    Like the boolean evaluator's code arrays, :class:`Bounds` arrays are
    shared through the memo cache — consumers must copy before writing.
    """

    lower: np.ndarray
    upper: np.ndarray

    @classmethod
    def point(cls, values: np.ndarray) -> "Bounds":
        """Decided rows: the interval collapses to a point.

        Both tuple slots alias the same array; this is safe under the
        copy-before-write contract.
        """
        return cls(values, values)


def float_to_json(value: Optional[float]) -> object:
    """Encode a robustness bound for JSON (``±inf`` as strings).

    ``json.dumps`` would happily emit the non-standard ``Infinity`` /
    ``NaN`` tokens, which most parsers outside Python reject; encoding
    infinities as ``"inf"`` / ``"-inf"`` keeps every artifact strictly
    RFC 8259.  NaN is a hard error — a NaN bound means the evaluator
    broke its own no-NaN invariant, and silently serializing it would
    hide the bug in a golden file.
    """
    if value is None:
        return None
    value = float(value)
    if math.isnan(value):
        raise ValueError("robustness bounds must never be NaN")
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


def float_from_json(value: object) -> Optional[float]:
    """Decode a bound written by :func:`float_to_json`."""
    if value is None:
        return None
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError("not an encoded robustness bound: %r" % (value,))
    result = float(value)
    if math.isnan(result):
        raise ValueError("robustness bounds must never be NaN")
    return result


@dataclass(frozen=True)
class RuleRobustness:
    """Rule-level robustness interval over one checked trace.

    The rule-level degree is the minimum over all unmasked rows (a rule
    holds iff it holds at *every* checked row, and min is the robust
    counterpart of conjunction), so:

    Attributes:
        lower/upper: interval bracketing the rule's true margin.  When
            every row is decided the interval is a point.
        worst_row: row index (absolute, in the checked view/stream) that
            attains the minimal upper bound — the moment the rule came
            closest to (or deepest into) violation.  ``None`` when no
            row ever produced a finite bound (empty view, fully vacuous
            rule): there is no "closest moment" to point at.
        worst_time: timestamp of ``worst_row``, seconds.
    """

    lower: float
    upper: float
    worst_row: Optional[int] = None
    worst_time: Optional[float] = None

    @property
    def decided(self) -> bool:
        """Whether the margin is exact (interval collapsed to a point)."""
        return self.lower == self.upper

    @property
    def margin(self) -> float:
        """The certain margin bound: the rule's robustness is ≤ this.

        A negative value proves a violation by at least ``-margin``; a
        positive value bounds how robust the rule *can* be (and equals
        the true degree when :attr:`decided`).
        """
        return self.upper

    @property
    def excludes_zero(self) -> bool:
        """Whether the interval already decides the boolean verdict."""
        return self.upper < 0.0 or self.lower > 0.0

    def to_dict(self) -> dict:
        """JSON-safe digest (``±inf`` encoded, NaN rejected)."""
        return {
            "lower": float_to_json(self.lower),
            "upper": float_to_json(self.upper),
            "worst_row": self.worst_row,
            "worst_time": self.worst_time,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RuleRobustness":
        """Rebuild from :meth:`to_dict` output."""
        worst_row = payload.get("worst_row")
        worst_time = payload.get("worst_time")
        return cls(
            lower=float_from_json(payload["lower"]),
            upper=float_from_json(payload["upper"]),
            worst_row=None if worst_row is None else int(worst_row),
            worst_time=None if worst_time is None else float(worst_time),
        )

    def __str__(self) -> str:
        if self.decided:
            span = "ρ=%s" % _fmt(self.upper)
        else:
            span = "ρ∈[%s, %s]" % (_fmt(self.lower), _fmt(self.upper))
        if self.worst_time is None:
            return span
        return "%s (worst at %.3fs)" % (span, self.worst_time)


def summarize_bounds(
    lower: np.ndarray, upper: np.ndarray, times: np.ndarray
) -> RuleRobustness:
    """Fold per-row bounds into the rule-level interval.

    Masked rows must already be neutralized to ``+inf`` (paralleling the
    boolean path's ``codes[masked] = TRUE``).  A zero-row view carries
    no evidence at all, so its interval is the whole line ``[-inf, inf]``
    — the robust counterpart of ``summarize_codes([]) == UNKNOWN``.
    """
    if len(upper) == 0:
        return RuleRobustness(lower=-math.inf, upper=math.inf)
    if np.isnan(lower).any() or np.isnan(upper).any():
        raise ValueError("robustness bounds must never be NaN")
    rule_upper = float(upper.min())
    rule_lower = float(lower.min())
    if rule_upper == math.inf:
        # Every row is masked or vacuously satisfied with no metric:
        # nothing to point at as the closest approach.
        return RuleRobustness(lower=rule_lower, upper=rule_upper)
    worst = int(np.argmin(upper))
    return RuleRobustness(
        lower=rule_lower,
        upper=rule_upper,
        worst_row=worst,
        worst_time=float(times[worst]),
    )


def _fmt(value: float) -> str:
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return "%+.4g" % value
