"""The partial test oracle built on the monitor.

The paper's oracles are partial in two ways (§II): they cover only
critical properties (not all behaviour), and they bound safety only
approximately.  Accordingly the oracle maps a monitor report to one of
three outcomes rather than a crisp pass/fail:

* **FAIL** — at least one safety rule was violated; the test revealed a
  problem (even one violation "provides useful evidence that the system
  is unsafe").
* **PASS** — every rule was definitively satisfied on every checked row.
* **INCONCLUSIVE** — no violations, but some rows could not be decided
  (bounded windows truncated by the end of the trace, masked warm-up
  spans), so the evidence is weaker than a PASS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.monitor import Monitor, MonitorReport
from repro.core.types import Verdict
from repro.core.violations import Violation
from repro.logs.trace import Trace


class OracleVerdict(enum.Enum):
    """Outcome of judging one test trace."""

    PASS = "pass"
    FAIL = "fail"
    INCONCLUSIVE = "inconclusive"


@dataclass
class OracleResult:
    """Verdict plus the evidence behind it."""

    verdict: OracleVerdict
    report: MonitorReport
    failures: Dict[str, List[Violation]]

    @property
    def failed(self) -> bool:
        """Whether the oracle declared the test failed."""
        return self.verdict is OracleVerdict.FAIL

    def explain(self) -> str:
        """Human-readable justification for the verdict."""
        lines = ["oracle verdict: %s" % self.verdict.value.upper()]
        for rule_id in sorted(self.failures):
            for violation in self.failures[rule_id]:
                lines.append("  %s" % violation)
        if not self.failures:
            unknown = sum(
                result.rows_unknown for result in self.report.results.values()
            )
            if unknown:
                lines.append("  %d undecidable row-verdicts" % unknown)
        return "\n".join(lines)


class TestOracle:
    """A monitor-backed partial oracle for system test traces."""

    # Not a pytest test class, despite the (paper-accurate) name.
    __test__ = False

    def __init__(self, monitor: Monitor) -> None:
        self.monitor = monitor

    def judge(
        self,
        trace: Trace,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> OracleResult:
        """Judge one captured test trace."""
        report = self.monitor.check(trace, start=start, end=end)
        return self.judge_report(report)

    def judge_report(self, report: MonitorReport) -> OracleResult:
        """Judge an existing monitor report."""
        failures = {
            rule_id: result.violations
            for rule_id, result in report.results.items()
            if result.violated
        }
        if failures:
            verdict = OracleVerdict.FAIL
        elif all(
            result.verdict is Verdict.TRUE
            for result in report.results.values()
        ):
            verdict = OracleVerdict.PASS
        else:
            verdict = OracleVerdict.INCONCLUSIVE
        return OracleResult(verdict=verdict, report=report, failures=failures)
