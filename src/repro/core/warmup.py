"""Warm-up handling for discrete value jumps (§V-C2).

Some CPS signals represent continuous physical quantities but jump
discretely when they *activate* — the paper's example is ``TargetRange``,
which is 0 with no target and leaps to the true range on acquisition.
Rules that difference such signals fire false alarms at every activation
unless the check is "warmed up": suppressed for a short window after the
activation event, letting change-tracking state initialize.

The paper calls for "a uniform way of warming up monitors for data that
changes state abruptly"; :class:`WarmupSpec` is that mechanism.  A spec
names a *trigger* formula (the activation event) and a duration; the
monitor masks rule evaluation for ``duration`` seconds after every row
where the trigger is TRUE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.ast import Formula
from repro.core.evaluator import EvalContext, evaluate_formula
from repro.core.parser import parse_formula
from repro.core.types import TRUE_CODE
from repro.core.windows import dilate_backwards


@dataclass(frozen=True)
class WarmupSpec:
    """Suppress checking for ``duration`` seconds after each trigger row.

    The trigger is typically an activation edge, written with ``prev``,
    e.g. ``VehicleAhead and prev(VehicleAhead) == 0`` (target acquired).
    """

    trigger: Formula
    duration: float

    @classmethod
    def parse(cls, trigger_text: str, duration: float) -> "WarmupSpec":
        """Build a spec from trigger source text."""
        return cls(parse_formula(trigger_text), duration)

    def mask(self, ctx: EvalContext) -> np.ndarray:
        """Boolean mask of rows to suppress (True = masked).

        The dilation runs on the O(n) window kernel — a row is masked
        when the trigger fired within the last ``duration`` seconds.
        """
        codes = evaluate_formula(self.trigger, ctx)
        triggered = (codes == TRUE_CODE).astype(np.int8)
        width = int(round(self.duration / ctx.view.period))
        return dilate_backwards(triggered, width)


def activation_warmup(signal: str, duration: float) -> WarmupSpec:
    """Convenience: warm up after ``signal`` turns from zero to nonzero.

    This is the §V-C2 pattern for signals like ``VehicleAhead`` /
    ``TargetRange`` that jump on activation.
    """
    return WarmupSpec.parse(
        "%s != 0 and prev(%s) == 0" % (signal, signal), duration
    )
