"""Violation records — the evidence a test oracle reports.

A violation is a maximal run of consecutive FALSE rows for one rule.
Each record carries its time span, duration, and a *witness*: the held
values of the rule's signals at the first violating row, which is what an
engineer triaging a test log looks at first.  The full per-signal value
columns over the violation's span are kept alongside
(``witness_columns``), so triage can plot how the signals evolved through
the whole violating run, not just its first sample.  Severity buckets
follow the paper's triage vocabulary — it distinguished "extremely short transient"
violations (one cycle of bad ``RequestedDecel``) from sustained unsafe
behaviour (accelerating into the target for many seconds).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.robustness import float_from_json, float_to_json
from repro.core.types import FALSE_CODE

#: Violations at or below this duration are transients, seconds.
TRANSIENT_LIMIT = 0.1
#: Violations at or below this duration (and above transient) are brief.
BRIEF_LIMIT = 0.5


class Severity(enum.Enum):
    """Coarse triage bucket by violation duration."""

    TRANSIENT = "transient"
    BRIEF = "brief"
    SUSTAINED = "sustained"


@dataclass(frozen=True)
class Violation:
    """One maximal run of violating rows.

    Attributes:
        rule_id: the violated rule.
        start_row/end_row: inclusive row span in the trace view.
        start_time/end_time: times of those rows, seconds.
        period: the view's sample period (for duration computation).
        witness: held signal values at the first violating row.
        witness_columns: per-signal held-value arrays over the whole
            ``[start_row, end_row]`` span (each array has :attr:`rows`
            entries); excluded from equality comparisons.
    """

    rule_id: str
    start_row: int
    end_row: int
    start_time: float
    end_time: float
    period: float
    witness: Mapping[str, float] = field(default_factory=dict)
    witness_columns: Mapping[str, np.ndarray] = field(
        default_factory=dict, compare=False
    )
    #: Robustness margin over the violating span (the most negative
    #: upper bound — how deep the violation went), populated only when
    #: the monitor runs with ``robustness=True``.  Excluded from
    #: equality so margin-annotated records still compare equal to
    #: their boolean-only counterparts.
    margin: Optional[float] = field(default=None, compare=False)

    @property
    def rows(self) -> int:
        """Number of violating rows."""
        return self.end_row - self.start_row + 1

    @property
    def duration(self) -> float:
        """Span of the violation, seconds (one row counts as one period)."""
        return self.rows * self.period

    @property
    def severity(self) -> Severity:
        """Triage bucket by duration."""
        if self.duration <= TRANSIENT_LIMIT:
            return Severity.TRANSIENT
        if self.duration <= BRIEF_LIMIT:
            return Severity.BRIEF
        return Severity.SUSTAINED

    def __str__(self) -> str:
        text = "%s violated %.3f..%.3fs (%d rows, %s)" % (
            self.rule_id,
            self.start_time,
            self.end_time,
            self.rows,
            self.severity.value,
        )
        if self.margin is not None:
            text += " depth %.4g" % -self.margin
        return text


def extract_violations(
    codes: np.ndarray,
    times: np.ndarray,
    rule_id: str,
    period: float,
    witness_values: Optional[Mapping[str, np.ndarray]] = None,
) -> List[Violation]:
    """Find maximal FALSE runs in a verdict code array."""
    failing = codes == FALSE_CODE
    if not failing.any():
        return []
    boundaries = np.diff(failing.astype(np.int8))
    starts = list(np.flatnonzero(boundaries == 1) + 1)
    ends = list(np.flatnonzero(boundaries == -1))
    if failing[0]:
        starts.insert(0, 0)
    if failing[-1]:
        ends.append(len(failing) - 1)
    violations = []
    for start, end in zip(starts, ends):
        witness: Dict[str, float] = {}
        columns: Dict[str, np.ndarray] = {}
        if witness_values:
            witness = {
                name: float(values[start])
                for name, values in witness_values.items()
            }
            # Copy so the record survives the view it was sliced from.
            columns = {
                name: np.array(values[start : end + 1], dtype=float)
                for name, values in witness_values.items()
            }
        violations.append(
            Violation(
                rule_id=rule_id,
                start_row=int(start),
                end_row=int(end),
                start_time=float(times[start]),
                end_time=float(times[end]),
                period=period,
                witness=witness,
                witness_columns=columns,
            )
        )
    return violations


def merge_close(
    violations: List[Violation], max_gap: float
) -> List[Violation]:
    """Merge violations separated by at most ``max_gap`` seconds.

    Useful when triaging: a control oscillation can chop one underlying
    event into many short runs.  The merged record keeps the first run's
    witness and witness columns — the gap rows were not violating, so a
    concatenated column would misrepresent the span.
    """
    if not violations:
        return []
    ordered = sorted(violations, key=lambda v: v.start_row)
    merged = [ordered[0]]
    for violation in ordered[1:]:
        last = merged[-1]
        if violation.start_time - last.end_time <= max_gap:
            merged[-1] = Violation(
                rule_id=last.rule_id,
                start_row=last.start_row,
                end_row=violation.end_row,
                start_time=last.start_time,
                end_time=violation.end_time,
                period=last.period,
                witness=last.witness,
                witness_columns=last.witness_columns,
            )
        else:
            merged.append(violation)
    return merged


@dataclass(frozen=True)
class NearMiss:
    """A passing rule that came within ``threshold`` of violating.

    The §V-C experience reports hinged on *how close* nominal drives
    came to tripping a rule — evidence the boolean letters cannot carry.
    A near-miss record is produced for a rule whose final letter is
    ``S`` but whose certain margin bound (the minimal per-row upper
    bound over unmasked rows) is finite and at most ``threshold``.

    ``crossed`` marks the sharpest case: the margin is *negative* — some
    row genuinely violated the raw formula — yet the rule still reports
    ``S`` because intent filters dismissed every violation run.  Margins
    are deliberately pre-filter quantities (filters encode engineering
    intent, not distance), so a crossed near-miss is exactly the
    "relaxation is hiding a real excursion" signal a reviewer wants.

    Attributes:
        rule_id: the rule that nearly tripped.
        margin: the certain margin bound (signed; negative ⇒ crossed).
        time: timestamp of the closest approach, seconds.
        row: row index of the closest approach.
        threshold: the configured near-miss threshold this fell under.
        crossed: whether the raw formula was actually violated.
    """

    rule_id: str
    margin: float
    time: Optional[float]
    row: Optional[int]
    threshold: float
    crossed: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe digest (``±inf`` encoded, NaN rejected)."""
        return {
            "rule_id": self.rule_id,
            "margin": float_to_json(self.margin),
            "time": self.time,
            "row": self.row,
            "threshold": float_to_json(self.threshold),
            "crossed": self.crossed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "NearMiss":
        """Rebuild from :meth:`to_dict` output."""
        row = payload.get("row")
        time = payload.get("time")
        return cls(
            rule_id=str(payload["rule_id"]),
            margin=float_from_json(payload["margin"]),
            time=None if time is None else float(time),
            row=None if row is None else int(row),
            threshold=float_from_json(payload["threshold"]),
            crossed=bool(payload["crossed"]),
        )

    def __str__(self) -> str:
        kind = "crossed (dismissed)" if self.crossed else "near miss"
        at = "" if self.time is None else " at %.3fs" % self.time
        return "%s %s: margin %.4g%s (threshold %.4g)" % (
            self.rule_id,
            kind,
            self.margin,
            at,
            self.threshold,
        )


def annotate_margins(
    violations: List[Violation], upper: np.ndarray
) -> List[Violation]:
    """Attach per-violation margins from a row-wise upper-bound array.

    Each record's margin is the most negative upper bound over its
    ``[start_row, end_row]`` span — the depth of that violating run.
    ``upper`` must be indexed in the same row coordinates the violations
    carry.
    """
    annotated = []
    for violation in violations:
        depth = upper[violation.start_row : violation.end_row + 1]
        margin = float(depth.min()) if len(depth) else None
        annotated.append(
            Violation(
                rule_id=violation.rule_id,
                start_row=violation.start_row,
                end_row=violation.end_row,
                start_time=violation.start_time,
                end_time=violation.end_time,
                period=violation.period,
                witness=violation.witness,
                witness_columns=violation.witness_columns,
                margin=margin,
            )
        )
    return annotated
