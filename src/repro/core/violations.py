"""Violation records — the evidence a test oracle reports.

A violation is a maximal run of consecutive FALSE rows for one rule.
Each record carries its time span, duration, and a *witness*: the held
values of the rule's signals at the first violating row, which is what an
engineer triaging a test log looks at first.  The full per-signal value
columns over the violation's span are kept alongside
(``witness_columns``), so triage can plot how the signals evolved through
the whole violating run, not just its first sample.  Severity buckets
follow the paper's triage vocabulary — it distinguished "extremely short transient"
violations (one cycle of bad ``RequestedDecel``) from sustained unsafe
behaviour (accelerating into the target for many seconds).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.types import FALSE_CODE

#: Violations at or below this duration are transients, seconds.
TRANSIENT_LIMIT = 0.1
#: Violations at or below this duration (and above transient) are brief.
BRIEF_LIMIT = 0.5


class Severity(enum.Enum):
    """Coarse triage bucket by violation duration."""

    TRANSIENT = "transient"
    BRIEF = "brief"
    SUSTAINED = "sustained"


@dataclass(frozen=True)
class Violation:
    """One maximal run of violating rows.

    Attributes:
        rule_id: the violated rule.
        start_row/end_row: inclusive row span in the trace view.
        start_time/end_time: times of those rows, seconds.
        period: the view's sample period (for duration computation).
        witness: held signal values at the first violating row.
        witness_columns: per-signal held-value arrays over the whole
            ``[start_row, end_row]`` span (each array has :attr:`rows`
            entries); excluded from equality comparisons.
    """

    rule_id: str
    start_row: int
    end_row: int
    start_time: float
    end_time: float
    period: float
    witness: Mapping[str, float] = field(default_factory=dict)
    witness_columns: Mapping[str, np.ndarray] = field(
        default_factory=dict, compare=False
    )

    @property
    def rows(self) -> int:
        """Number of violating rows."""
        return self.end_row - self.start_row + 1

    @property
    def duration(self) -> float:
        """Span of the violation, seconds (one row counts as one period)."""
        return self.rows * self.period

    @property
    def severity(self) -> Severity:
        """Triage bucket by duration."""
        if self.duration <= TRANSIENT_LIMIT:
            return Severity.TRANSIENT
        if self.duration <= BRIEF_LIMIT:
            return Severity.BRIEF
        return Severity.SUSTAINED

    def __str__(self) -> str:
        return "%s violated %.3f..%.3fs (%d rows, %s)" % (
            self.rule_id,
            self.start_time,
            self.end_time,
            self.rows,
            self.severity.value,
        )


def extract_violations(
    codes: np.ndarray,
    times: np.ndarray,
    rule_id: str,
    period: float,
    witness_values: Optional[Mapping[str, np.ndarray]] = None,
) -> List[Violation]:
    """Find maximal FALSE runs in a verdict code array."""
    failing = codes == FALSE_CODE
    if not failing.any():
        return []
    boundaries = np.diff(failing.astype(np.int8))
    starts = list(np.flatnonzero(boundaries == 1) + 1)
    ends = list(np.flatnonzero(boundaries == -1))
    if failing[0]:
        starts.insert(0, 0)
    if failing[-1]:
        ends.append(len(failing) - 1)
    violations = []
    for start, end in zip(starts, ends):
        witness: Dict[str, float] = {}
        columns: Dict[str, np.ndarray] = {}
        if witness_values:
            witness = {
                name: float(values[start])
                for name, values in witness_values.items()
            }
            # Copy so the record survives the view it was sliced from.
            columns = {
                name: np.array(values[start : end + 1], dtype=float)
                for name, values in witness_values.items()
            }
        violations.append(
            Violation(
                rule_id=rule_id,
                start_row=int(start),
                end_row=int(end),
                start_time=float(times[start]),
                end_time=float(times[end]),
                period=period,
                witness=witness,
                witness_columns=columns,
            )
        )
    return violations


def merge_close(
    violations: List[Violation], max_gap: float
) -> List[Violation]:
    """Merge violations separated by at most ``max_gap`` seconds.

    Useful when triaging: a control oscillation can chop one underlying
    event into many short runs.  The merged record keeps the first run's
    witness and witness columns — the gap rows were not violating, so a
    concatenated column would misrepresent the span.
    """
    if not violations:
        return []
    ordered = sorted(violations, key=lambda v: v.start_row)
    merged = [ordered[0]]
    for violation in ordered[1:]:
        last = merged[-1]
        if violation.start_time - last.end_time <= max_gap:
            merged[-1] = Violation(
                rule_id=last.rule_id,
                start_row=last.start_row,
                end_row=violation.end_row,
                start_time=last.start_time,
                end_time=violation.end_time,
                period=last.period,
                witness=last.witness,
                witness_columns=last.witness_columns,
            )
        else:
            merged.append(violation)
    return merged
