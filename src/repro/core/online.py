"""Online (incremental) monitoring.

The paper performed all monitoring offline but notes "there is no
fundamental reason the monitoring could not be done at runtime".  This
module is that runtime path: an :class:`OnlineMonitor` consumes bus
events as they arrive, holds only a bounded window of history, and emits
verdicts as soon as they are decidable.

How it works
------------

Verdicts of bounded temporal formulas depend on a *finite* future: a row
is decidable once the stream has advanced past the rule set's maximum
:func:`~repro.core.evaluator.future_reach`.  The monitor therefore
buffers events into a rolling trace and, whenever enough new decidable
rows have accumulated (or on :meth:`finish`), evaluates a chunk:

* the chunk's view includes a *history margin* behind the emission
  window, so past-looking constructs (``prev``, freshness-aware
  ``delta``/``rate``, warm-up triggers) see the same context they would
  offline;
* state machines resume from their saved state at the history margin's
  first row, so modal state is continuous across chunks;
* only rows whose temporal windows are complete inside the chunk are
  emitted (the tail is re-evaluated next chunk), so emitted verdicts are
  **identical to the offline monitor's** for filter-free rules —
  a property the test suite checks exhaustively.

Bounded memory
--------------

Buffered events live in a :class:`~repro.logs.trace.StreamTrace` — a
deque-backed ring buffer with O(1) append and an advancing retention
frontier — so feeding is O(1) amortized per event and per-signal buffer
occupancy is **provably bounded**: after every chunk the monitor asserts
that no signal buffers more than ``history_rows + horizon_rows +
min_chunk_rows`` rows, however long the stream runs (see
:attr:`OnlineMonitor.max_buffer_rows`).

Three documented deviations from offline semantics:

* intent filters are applied per emitted violation segment; a violation
  that straddles a chunk boundary is filtered piecewise (its witness
  columns are re-joined when the segments coalesce, so the merged
  record's evidence covers its whole span);
* events older than the retention window are discarded, so the monitor's
  memory is O(retention), not O(trace);
* a **late event** — one timestamped before the retention frontier, i.e.
  for a row whose history has already been trimmed — is *dropped* and
  counted in ``online.late_events`` (and
  :attr:`OnlineMonitor.late_events`) rather than raising mid-stream: the
  offline monitor would have seen it, but a bounded-memory monitor by
  construction cannot re-evaluate rows it has discarded.  Events at or
  after the frontier must still be per-signal time-ordered, exactly as
  offline recording requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluator import (
    EvalContext,
    evaluate_formula,
    evaluate_robustness,
    future_reach,
    past_reach,
)
from repro.core.intent import apply_filters
from repro.core.monitor import (
    DEFAULT_PERIOD,
    Monitor,
    MonitorReport,
    Rule,
    RuleResult,
    _detect_near_miss,
)
from repro.core.robustness import RuleRobustness
from repro.core.statemachine import StateMachine
from repro.core.types import (
    FALSE_CODE,
    TRUE_CODE,
    UNKNOWN_CODE,
    Verdict,
)
from repro.core.violations import Violation, extract_violations
from repro.errors import TraceError
from repro.logs.trace import StreamTrace, Trace
from repro.obs import get_registry


@dataclass
class _RuleProgress:
    """Accumulated per-rule results across emitted chunks."""

    violations: List[Violation] = field(default_factory=list)
    dismissed: List[Violation] = field(default_factory=list)
    rows_total: int = 0
    rows_checked: int = 0
    rows_masked: int = 0
    rows_unknown: int = 0
    any_false: bool = False
    # Running minima of the emitted rows' robustness bounds.  Each
    # emitted row's bounds equal the offline evaluation's (the chunk
    # view covers its whole temporal window), so at finish these minima
    # *are* the offline rule-level interval.  Mid-stream the certain
    # bound (rob_upper) is already final for emitted rows and can only
    # decrease; the lower bound is genuinely -inf until the stream ends
    # (an unseen future row could be arbitrarily violating).
    rob_lower: float = math.inf
    rob_upper: float = math.inf
    worst_row: Optional[int] = None
    worst_time: Optional[float] = None
    #: Stream time at which the interval first excluded zero (the
    #: margin analogue of the boolean early-violation callback).
    decided_time: Optional[float] = None


class OnlineMonitor:
    """Streaming monitor with bounded memory and prompt verdicts.

    Args:
        rules: the rule set (same objects the offline monitor takes).
        machines: mode state machines referenced by the rules.
        period: monitor sampling period, seconds.
        min_chunk_rows: emit only once this many new rows are decidable
            (batches the vectorized evaluation; latency is bounded by
            ``future_reach + min_chunk_rows * period``).
        retention: seconds of history kept behind the emission frontier.
            Automatically raised to cover warm-up durations, the initial
            settle windows, and a couple of slow message periods.
        memo: per-chunk subformula memoization — every chunk evaluates
            each distinct subformula once across all rules (the same
            cross-rule cache the offline monitor uses, scoped to the
            chunk's context).
        robustness: also stream quantitative margins: each emitted
            chunk tightens a per-rule ``[lower, upper]`` interval (see
            :meth:`robustness_intervals`) that always brackets the
            offline margin and collapses to it at :meth:`finish`.
        near_miss_threshold: flag passing rules whose final margin is
            at most this (implies ``robustness``).
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        machines: Sequence[StateMachine] = (),
        period: float = DEFAULT_PERIOD,
        min_chunk_rows: int = 50,
        retention: float = 1.0,
        memo: bool = True,
        robustness: bool = False,
        near_miss_threshold: Optional[float] = None,
    ) -> None:
        # Reuse the offline monitor's validation and signal bookkeeping.
        self._offline = Monitor(rules, machines=machines, period=period, memo=memo)
        self.rules = self._offline.rules
        self.machines = self._offline.machines
        self.period = period
        self.min_chunk_rows = max(1, min_chunk_rows)
        self.memo = memo
        if near_miss_threshold is not None:
            if near_miss_threshold < 0:
                raise TraceError(
                    "near_miss_threshold must be non-negative, got %r"
                    % (near_miss_threshold,)
                )
            robustness = True
        self.robustness = robustness
        self.near_miss_threshold = near_miss_threshold

        reach = 0.0
        history = retention
        for rule in self.rules:
            formula = rule.effective_formula()
            reach = max(reach, future_reach(formula, period))
            history = max(history, past_reach(formula, period) + 2 * period)
            history = max(history, rule.initial_settle + period)
            if rule.warmup is not None:
                history = max(history, rule.warmup.duration + 2 * period)
        self._horizon_rows = int(math.ceil(reach / period)) + 1
        self._history_rows = int(math.ceil(history / period)) + 2

        self._buffer = StreamTrace("online")
        self._signals = set(self._offline.required_signals())
        self._start_time: Optional[float] = None
        self._latest: float = -math.inf
        self._next_emit_row = 0
        #: Late events dropped behind the retention frontier (see the
        #: module docstring's deviation list).
        self.late_events = 0
        #: Chunk emissions deferred because a required signal had no
        #: buffered data yet (mirrors the ``online.emit_waiting`` counter).
        self.emit_waits = 0
        self._waiting_signals: Tuple[str, ...] = ()
        self._peak_buffer_rows = 0
        self._machine_resume: Dict[str, Tuple[int, str]] = {
            machine.name: (0, machine.initial) for machine in self.machines
        }
        self._progress: Dict[str, _RuleProgress] = {
            rule.rule_id: _RuleProgress() for rule in self.rules
        }
        self._finished = False

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------

    @property
    def decision_latency(self) -> float:
        """Worst-case seconds between a row and its emitted verdict."""
        return (self._horizon_rows + self.min_chunk_rows) * self.period

    @property
    def max_buffer_rows(self) -> int:
        """Per-signal buffered-row bound the monitor never exceeds.

        At every ``feed`` return, each signal's buffered updates span at
        most ``history_rows + horizon_rows + min_chunk_rows`` monitor
        rows: the history margin behind the emission frontier, the
        undecidable horizon ahead of it, and the chunk batch between.
        The bound is asserted after every chunk's trim.
        """
        return self._history_rows + self._horizon_rows + self.min_chunk_rows

    @property
    def peak_buffer_rows(self) -> int:
        """Largest per-signal buffered update count observed so far.

        Sampled at each chunk emission (before trimming — the fullest
        point of the buffer cycle).  For a signal updating once per
        monitor row this is exactly its peak buffered rows, and it never
        exceeds :attr:`max_buffer_rows` plus the updates-per-row factor.
        """
        return self._peak_buffer_rows

    def buffer_row_span(self) -> int:
        """Monitor rows spanned by the fullest per-signal buffer now."""
        if self._start_time is None:
            return 0
        span = 0
        for signal in self._buffer.signals():
            if not self._buffer.update_count(signal):
                continue
            oldest, newest = self._buffer.time_bounds(signal)
            span = max(span, self._row_of(newest) - self._row_of(oldest) + 1)
        return span

    def feed(self, timestamp: float, signal: str, value: float) -> List[Violation]:
        """Consume one bus event; returns violations finalized by it.

        Every event advances the monitor's clock (time passes on the bus
        whether or not the rules reference the signal — exactly as an
        offline check over the full trace sees it); only referenced
        signals are buffered.  A referenced-signal event older than the
        retention frontier is dropped and counted (``online.late_events``)
        instead of being buffered — its row has already been emitted or
        trimmed, so it can no longer influence any verdict.
        """
        if self._finished:
            raise TraceError("monitor already finished")
        if self._start_time is None:
            self._start_time = timestamp
        self._latest = max(self._latest, timestamp)
        if signal not in self._signals:
            return []
        if timestamp < self._buffer.frontier:
            self.late_events += 1
            get_registry().counter("online.late_events").inc()
            return []
        self._buffer.record(signal, timestamp, value)
        decidable = self._decidable_row()
        if decidable - self._next_emit_row >= self.min_chunk_rows:
            return self._emit(decidable)
        return []

    def feed_trace(self, trace: Trace) -> List[Violation]:
        """Replay a whole trace through the stream (for testing/replays)."""
        fresh: List[Violation] = []
        for timestamp, signal, value in trace.events():
            fresh.extend(self.feed(timestamp, signal, value))
        return fresh

    def finish(self, trace_name: str = "online") -> MonitorReport:
        """Flush the tail (emitting UNKNOWNs where windows are cut short)
        and assemble the final report."""
        if self._finished:
            raise TraceError("monitor already finished")
        self._finished = True
        if self._start_time is not None:
            last_row = self._row_of(self._latest)
            if last_row >= self._next_emit_row:
                self._emit(last_row, allow_unknown_tail=True)
        report = MonitorReport(
            trace_name=trace_name,
            period=self.period,
            duration=(self._latest - self._start_time)
            if self._start_time is not None
            else 0.0,
        )
        if self._waiting_signals:
            report.notes.append(
                "online: %d chunk emission(s) deferred; buffered data was "
                "never evaluated because required signal(s) never arrived: %s"
                % (self.emit_waits, ", ".join(self._waiting_signals))
            )
        elif self.emit_waits:
            report.notes.append(
                "online: %d chunk emission(s) deferred early in the stream "
                "while required signals were still missing" % self.emit_waits
            )
        if self.late_events:
            report.notes.append(
                "online: %d late event(s) dropped behind the retention "
                "frontier (offline monitoring of the full log would have "
                "seen them)" % self.late_events
            )
        for rule in self.rules:
            progress = self._progress[rule.rule_id]
            if progress.violations:
                verdict = Verdict.FALSE
            elif progress.any_false:
                verdict = Verdict.TRUE  # everything dismissed by filters
            elif progress.rows_unknown:
                verdict = Verdict.UNKNOWN
            elif progress.rows_total:
                verdict = Verdict.TRUE
            else:
                verdict = Verdict.UNKNOWN
            robustness = None
            near_miss = None
            if self.robustness:
                lower, upper = self.robustness_intervals()[rule.rule_id]
                robustness = RuleRobustness(
                    lower=lower,
                    upper=upper,
                    worst_row=progress.worst_row,
                    worst_time=progress.worst_time,
                )
                near_miss = _detect_near_miss(
                    rule.rule_id,
                    robustness,
                    progress.violations,
                    self.near_miss_threshold,
                )
            report.results[rule.rule_id] = RuleResult(
                rule=rule,
                verdict=verdict,
                violations=progress.violations,
                dismissed=progress.dismissed,
                rows_total=progress.rows_total,
                rows_checked=progress.rows_checked,
                rows_masked=progress.rows_masked,
                rows_unknown=progress.rows_unknown,
                robustness=robustness,
                near_miss=near_miss,
            )
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _row_of(self, timestamp: float) -> int:
        return int(math.floor((timestamp - self._start_time) / self.period + 1e-9))

    def _decidable_row(self) -> int:
        return self._row_of(self._latest) - self._horizon_rows

    def _emit(self, upto_row: int, allow_unknown_tail: bool = False) -> List[Violation]:
        """Evaluate and finalize rows [next_emit_row .. upto_row].

        When metrics are on, each chunk records its emitted size
        (``online.chunk_rows``), the rows the view re-evaluates beyond
        what it emits (``online.rows_reevaluated`` — history margin plus
        undecidable tail, the price of chunked online evaluation), and
        the post-trim buffer size (``online.buffer_events``).
        """
        registry = get_registry()
        with registry.span("online.emit"):
            return self._emit_instrumented(upto_row, registry)

    def _emit_instrumented(
        self, upto_row: int, registry
    ) -> List[Violation]:
        occupancy = max(
            (
                self._buffer.update_count(signal)
                for signal in self._buffer.signals()
            ),
            default=0,
        )
        if occupancy > self._peak_buffer_rows:
            self._peak_buffer_rows = occupancy
        history_start = max(0, self._next_emit_row - self._history_rows)
        t0 = self._start_time
        view_start = t0 + history_start * self.period
        view_end = t0 + (upto_row + self._horizon_rows) * self.period
        view_end = min(view_end, self._latest)
        try:
            view = self._buffer.to_view(
                self.period,
                signals=self._offline.required_signals(),
                start=view_start,
                end=view_end,
            )
        except TraceError:
            # A required signal has no buffered data yet: keep buffering
            # and record that evaluation is stalled — finish() surfaces
            # the missing names if the stall never resolves.
            self.emit_waits += 1
            self._waiting_signals = tuple(
                name
                for name in self._offline.required_signals()
                if not (
                    name in self._buffer and self._buffer.update_count(name)
                )
            )
            registry.counter("online.emit_waiting").inc()
            return []
        self._waiting_signals = ()
        ctx = EvalContext(view, memo=self.memo)
        chunk_initials: Dict[str, str] = {}
        for machine in self.machines:
            resume_row, resume_state = self._machine_resume[machine.name]
            initial = (
                resume_state if resume_row == history_start else machine.initial
            )
            chunk_initials[machine.name] = initial
            states = machine.run(ctx, initial=initial)
            ctx.machine_states[machine.name] = states
            ctx.machine_alphabets[machine.name] = machine.alphabet

        emit_lo = self._next_emit_row - history_start  # view-relative
        emit_hi = upto_row - history_start
        emitted_rows = upto_row - self._next_emit_row + 1
        registry.counter("online.chunks").inc()
        registry.histogram("online.chunk_rows").observe(emitted_rows)
        registry.counter("online.rows_emitted").inc(emitted_rows)
        registry.counter("online.rows_reevaluated").inc(
            max(view.n_rows - emitted_rows, 0)
        )
        fresh: List[Violation] = []
        for rule in self.rules:
            fresh.extend(
                self._emit_rule(rule, ctx, history_start, emit_lo, emit_hi)
            )

        # Save machine state for the next chunk's history start: the
        # state *entering* that row (i.e. after the preceding row), so
        # the row's own transition fires exactly once when re-evaluated.
        next_history_start = max(0, upto_row + 1 - self._history_rows)
        for machine in self.machines:
            states = ctx.machine_states[machine.name]
            index = next_history_start - history_start
            if index <= 0:
                entering = chunk_initials[machine.name]
            else:
                entering = str(states[min(index, len(states)) - 1])
            self._machine_resume[machine.name] = (
                next_history_start,
                entering,
            )

        self._next_emit_row = upto_row + 1
        # Advance the retention frontier: events behind it can no longer
        # influence any future chunk.  trim() pops each expired update
        # exactly once, so maintenance is O(1) amortized per event —
        # never a rebuild of the retained suffix.
        keep_from = t0 + next_history_start * self.period
        self._buffer.trim(keep_from)
        span = self.buffer_row_span()
        if span > self.max_buffer_rows:
            raise AssertionError(
                "bounded-memory invariant broken: buffer spans %d rows, "
                "bound is %d (history %d + horizon %d + chunk %d)"
                % (
                    span,
                    self.max_buffer_rows,
                    self._history_rows,
                    self._horizon_rows,
                    self.min_chunk_rows,
                )
            )
        registry.gauge("online.buffer_events").set(self._buffer.update_count())
        registry.gauge("online.buffer_peak_rows").set(self._peak_buffer_rows)
        return fresh

    def _emit_rule(
        self,
        rule: Rule,
        ctx: EvalContext,
        history_start: int,
        emit_lo: int,
        emit_hi: int,
    ) -> List[Violation]:
        view = ctx.view
        codes = evaluate_formula(rule.effective_formula(), ctx).copy()

        masked = np.zeros(view.n_rows, dtype=bool)
        if rule.initial_settle > 0:
            settle_rows = int(round(rule.initial_settle / self.period))
            # Absolute settle window, expressed in view-relative rows.
            settle_end = settle_rows - history_start
            if settle_end >= 0:
                masked[: settle_end + 1] = True
        if rule.warmup is not None:
            masked |= rule.warmup.mask(ctx)
        codes[masked] = TRUE_CODE

        lo = max(emit_lo, 0)
        hi = min(emit_hi, view.n_rows - 1)
        if hi < lo:
            return []
        window = codes[lo : hi + 1]
        progress = self._progress[rule.rule_id]
        progress.rows_total += hi - lo + 1
        progress.rows_masked += int(masked[lo : hi + 1].sum())
        progress.rows_checked += int((~masked[lo : hi + 1]).sum())
        progress.rows_unknown += int((window == UNKNOWN_CODE).sum())

        if self.robustness:
            self._accumulate_robustness(
                rule, ctx, masked, progress, history_start, lo, hi
            )

        # As offline: witness columns are only sliced out when the
        # emitted window actually contains a violation.
        if (window == FALSE_CODE).any():
            witness = {
                name: view.values(name)[lo : hi + 1]
                for name in rule.signals()
                if name in view
            }
            raw = extract_violations(
                window,
                view.times[lo : hi + 1],
                rule.rule_id,
                self.period,
                witness,
            )
        else:
            raw = []
        # Shift rows to view coordinates so intent filters index the
        # chunk's context correctly.
        raw = [self._shift(v, lo) for v in raw]
        if raw:
            progress.any_false = True
        kept, dropped = apply_filters(raw, rule.filters, ctx)
        # Re-anchor from view coordinates to absolute stream rows.
        kept = [self._shift(v, history_start) for v in kept]
        dropped = [self._shift(v, history_start) for v in dropped]
        fresh = self._absorb(progress.violations, kept)
        self._absorb(progress.dismissed, dropped)
        return fresh

    def _accumulate_robustness(
        self,
        rule: Rule,
        ctx: EvalContext,
        masked: np.ndarray,
        progress: _RuleProgress,
        history_start: int,
        lo: int,
        hi: int,
    ) -> None:
        """Fold the emitted rows' robustness bounds into the running
        interval.

        Emitted rows have complete temporal windows inside the chunk
        view, so their bounds equal the offline evaluation's — the
        running minima therefore converge to exactly the offline
        rule-level interval (a property the fuzz harness checks).
        """
        bounds = evaluate_robustness(rule.effective_formula(), ctx)
        row_lower = bounds.lower.copy()
        row_upper = bounds.upper.copy()
        row_lower[masked] = np.inf
        row_upper[masked] = np.inf
        chunk_lower = row_lower[lo : hi + 1]
        chunk_upper = row_upper[lo : hi + 1]
        progress.rob_lower = min(
            progress.rob_lower, float(chunk_lower.min())
        )
        chunk_min = float(chunk_upper.min())
        if chunk_min < progress.rob_upper:
            # Strict improvement only, so ties keep the earliest chunk's
            # row — matching offline argmin's first-occurrence rule.
            progress.rob_upper = chunk_min
            index = int(np.argmin(chunk_upper))
            progress.worst_row = history_start + lo + index
            # Recompute from the stream origin rather than reading the
            # chunk view's times: the view's base is already the sum
            # t0 + history_start*period, and adding the in-view offset
            # to that drifts a last-place unit from the offline view's
            # t0 + row*period.
            progress.worst_time = (
                self._start_time + self.period * progress.worst_row
            )
        if progress.decided_time is None and progress.rob_upper < 0.0:
            # The interval [-inf, rob_upper] now excludes zero: the
            # rule is already certainly violated, however the stream
            # continues.
            progress.decided_time = self._latest
            get_registry().counter("online.early_decisions").inc()

    def robustness_intervals(self) -> Dict[str, Tuple[float, float]]:
        """Current per-rule ``[lower, upper]`` margin intervals.

        Mid-stream the lower bound is ``-inf`` — future rows can be
        arbitrarily violating — while the upper bound only tightens
        (monotonically non-increasing) as chunks are emitted.  After
        :meth:`finish` the interval equals the offline check's: both
        bounds are the minima over all emitted rows.  The offline
        margin interval is always contained in every intermediate
        interval reported here.
        """
        if not self.robustness:
            raise TraceError(
                "robustness intervals require OnlineMonitor(robustness=True)"
            )
        intervals: Dict[str, Tuple[float, float]] = {}
        for rule in self.rules:
            progress = self._progress[rule.rule_id]
            if self._finished and progress.rows_total:
                lower = progress.rob_lower
            else:
                lower = -math.inf
            intervals[rule.rule_id] = (lower, progress.rob_upper)
        return intervals

    def early_decisions(self) -> Dict[str, float]:
        """Rules whose interval excluded zero mid-stream, with the
        stream time of that decision."""
        return {
            rule.rule_id: self._progress[rule.rule_id].decided_time
            for rule in self.rules
            if self._progress[rule.rule_id].decided_time is not None
        }

    @staticmethod
    def _absorb(
        accumulated: List[Violation], incoming: List[Violation]
    ) -> List[Violation]:
        """Append violations, coalescing runs split by chunk boundaries.

        Returns the genuinely new violation records (a continuation of
        the previous chunk's final run extends it rather than appearing
        as a fresh violation).  When a run extends, the witness columns
        of both segments are concatenated so the merged record's
        evidence covers its whole ``[start_row, end_row]`` span — the
        first-row ``witness`` scalars stay those of the run's true start.
        """
        fresh: List[Violation] = []
        for violation in incoming:
            if (
                accumulated
                and accumulated[-1].end_row + 1 == violation.start_row
            ):
                last = accumulated[-1]
                columns = {
                    name: np.concatenate(
                        [column, violation.witness_columns[name]]
                    )
                    for name, column in last.witness_columns.items()
                    if name in violation.witness_columns
                }
                accumulated[-1] = Violation(
                    rule_id=last.rule_id,
                    start_row=last.start_row,
                    end_row=violation.end_row,
                    start_time=last.start_time,
                    end_time=violation.end_time,
                    period=last.period,
                    witness=last.witness,
                    witness_columns=columns,
                )
            else:
                accumulated.append(violation)
                fresh.append(violation)
        return fresh

    @staticmethod
    def _shift(violation: Violation, offset: int) -> Violation:
        return Violation(
            rule_id=violation.rule_id,
            start_row=violation.start_row + offset,
            end_row=violation.end_row + offset,
            start_time=violation.start_time,
            end_time=violation.end_time,
            period=violation.period,
            witness=violation.witness,
            witness_columns=violation.witness_columns,
        )
