"""Recursive-descent parser for the specification language.

Grammar (informal)::

    formula     := implication
    implication := disjunction ('->' implication)?
    disjunction := conjunction ('or' conjunction)*
    conjunction := unary ('and' unary)*
    unary       := 'not' unary
                 | 'always' bounds unary
                 | 'eventually' bounds unary
                 | 'once' bounds unary          -- bounded past
                 | 'historically' bounds unary  -- bounded past
                 | 'next' unary
                 | atom
    atom        := 'true' | 'false'
                 | 'in_state' '(' IDENT ',' IDENT ')'
                 | 'fresh' '(' IDENT ')'
                 | 'rising' '(' IDENT [',' expr] ')'
                 | 'falling' '(' IDENT [',' expr] ')'
                 | comparison
                 | '(' formula ')'
                 | IDENT                     -- boolean signal
    bounds      := '[' time (','|':') time ']'
    time        := NUMBER ['s' | 'ms']
    comparison  := expr RELOP expr
    expr        := term (('+'|'-') term)*
    term        := factor (('*'|'/') factor)*
    factor      := '-' factor | primary
    primary     := NUMBER | IDENT | '(' expr ')'
                 | ('delta'|'delta_naive'|'rate'|'prev'|'age') '(' IDENT ')'
                 | 'abs' '(' expr ')'
                 | ('min'|'max') '(' expr ',' expr ')'

``rising(S)`` / ``falling(S)`` are sugar for ``delta(S) > 0`` /
``delta(S) < 0``; an optional second argument gives a magnitude
threshold (``rising(S, 5)`` means ``delta(S) > 5``), which is how the
relaxed "intent-aware" rule variants express negligible-change tolerance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.ast import (
    Always,
    And,
    Binary,
    BoolConst,
    Comparison,
    Constant,
    Eventually,
    Expr,
    Formula,
    Fresh,
    Historically,
    Implies,
    InState,
    Next,
    Once,
    Not,
    Or,
    SignalPredicate,
    SignalRef,
    TraceFunc,
    Unary,
)
from repro.core.lexer import Token, tokenize
from repro.errors import SpecError

_RELOPS = ("<", "<=", ">", ">=", "==", "!=")
_SIGNAL_FUNCS = ("delta", "delta_naive", "rate", "prev", "age")


def parse_formula(source: str) -> Formula:
    """Parse a complete formula from source text."""
    parser = _Parser(tokenize(source), source)
    formula = parser.formula()
    parser.expect_end()
    return formula


def parse_expr(source: str) -> Expr:
    """Parse a complete numeric expression from source text."""
    parser = _Parser(tokenize(source), source)
    expr = parser.expr()
    parser.expect_end()
    return expr


class _Parser:
    """Backtracking recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "end":
            self._pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            wanted = text if text is not None else kind
            raise SpecError(
                "expected %s but found %s at %s in %r"
                % (wanted, self._current, self._current.location, self._source)
            )
        return self._advance()

    def expect_end(self) -> None:
        """Assert the whole input was consumed."""
        if self._current.kind != "end":
            raise SpecError(
                "unexpected trailing input %s at %s in %r"
                % (self._current, self._current.location, self._source)
            )

    # -- formulas --------------------------------------------------------

    def formula(self) -> Formula:
        """Entry point: implication (right-associative)."""
        left = self._disjunction()
        if self._accept("op", "->"):
            return Implies(left, self.formula())
        return left

    def _disjunction(self) -> Formula:
        left = self._conjunction()
        while self._accept("keyword", "or"):
            left = Or(left, self._conjunction())
        return left

    def _conjunction(self) -> Formula:
        left = self._unary_formula()
        while self._accept("keyword", "and"):
            left = And(left, self._unary_formula())
        return left

    def _unary_formula(self) -> Formula:
        if self._accept("keyword", "not"):
            return Not(self._unary_formula())
        if self._accept("keyword", "always"):
            lo, hi = self._bounds()
            return Always(lo, hi, self._unary_formula())
        if self._accept("keyword", "eventually"):
            lo, hi = self._bounds()
            return Eventually(lo, hi, self._unary_formula())
        if self._accept("keyword", "next"):
            return Next(self._unary_formula())
        if self._accept("keyword", "once"):
            lo, hi = self._bounds()
            return Once(lo, hi, self._unary_formula())
        if self._accept("keyword", "historically"):
            lo, hi = self._bounds()
            return Historically(lo, hi, self._unary_formula())
        return self._atom()

    def _atom(self) -> Formula:
        if self._accept("keyword", "true"):
            return BoolConst(True)
        if self._accept("keyword", "false"):
            return BoolConst(False)
        if self._accept("keyword", "in_state"):
            self._expect("op", "(")
            machine = self._expect("ident").text
            self._expect("op", ",")
            state = self._expect("ident").text
            self._expect("op", ")")
            return InState(machine, state)
        if self._accept("keyword", "fresh"):
            self._expect("op", "(")
            name = self._expect("ident").text
            self._expect("op", ")")
            return Fresh(name)
        if self._check("keyword", "rising") or self._check("keyword", "falling"):
            return self._trend_sugar()
        # Comparison vs. parenthesized formula vs. boolean signal: try a
        # comparison first and backtrack if no relational operator shows up.
        saved = self._pos
        try:
            return self._comparison()
        except SpecError:
            self._pos = saved
        if self._accept("op", "("):
            inner = self.formula()
            self._expect("op", ")")
            return inner
        if self._check("ident"):
            return SignalPredicate(self._advance().text)
        raise SpecError(
            "expected a formula at %s in %r, found %s"
            % (self._current.location, self._source, self._current)
        )

    def _trend_sugar(self) -> Formula:
        keyword = self._advance().text
        self._expect("op", "(")
        name = self._expect("ident").text
        threshold: Expr = Constant(0.0)
        if self._accept("op", ","):
            threshold = self.expr()
        self._expect("op", ")")
        delta = TraceFunc("delta", name)
        if keyword == "rising":
            return Comparison(">", delta, threshold)
        return Comparison("<", delta, Unary("-", threshold))

    def _comparison(self) -> Formula:
        left = self.expr()
        token = self._current
        if token.kind == "op" and token.text in _RELOPS:
            self._advance()
            right = self.expr()
            return Comparison(token.text, left, right)
        raise SpecError(
            "expected a comparison operator at %s in %r"
            % (token.location, self._source)
        )

    def _bounds(self) -> Tuple[float, float]:
        self._expect("op", "[")
        lo = self._time()
        if not (self._accept("op", ",") or self._accept("op", ":")):
            raise SpecError(
                "expected ',' or ':' in time bounds at %s in %r"
                % (self._current.location, self._source)
            )
        hi = self._time()
        self._expect("op", "]")
        if lo < 0 or hi < lo:
            raise SpecError(
                "invalid time bounds [%g, %g] in %r" % (lo, hi, self._source)
            )
        return lo, hi

    def _time(self) -> float:
        number = float(self._expect("number").text)
        if self._check("ident", "s"):
            self._advance()
            return number
        if self._check("ident", "ms"):
            self._advance()
            return number / 1000.0
        return number

    # -- expressions -----------------------------------------------------

    def expr(self) -> Expr:
        """Additive expression."""
        left = self._term()
        while True:
            if self._accept("op", "+"):
                left = Binary("+", left, self._term())
            elif self._accept("op", "-"):
                left = Binary("-", left, self._term())
            else:
                return left

    def _term(self) -> Expr:
        left = self._factor()
        while True:
            if self._accept("op", "*"):
                left = Binary("*", left, self._factor())
            elif self._accept("op", "/"):
                left = Binary("/", left, self._factor())
            else:
                return left

    def _factor(self) -> Expr:
        if self._accept("op", "-"):
            return Unary("-", self._factor())
        return self._primary()

    def _primary(self) -> Expr:
        if self._check("number"):
            return Constant(float(self._advance().text))
        if self._check("ident"):
            return SignalRef(self._advance().text)
        for func in _SIGNAL_FUNCS:
            if self._accept("keyword", func):
                self._expect("op", "(")
                name = self._expect("ident").text
                self._expect("op", ")")
                return TraceFunc(func, name)
        if self._accept("keyword", "abs"):
            self._expect("op", "(")
            inner = self.expr()
            self._expect("op", ")")
            return Unary("abs", inner)
        for func in ("min", "max"):
            if self._accept("keyword", func):
                self._expect("op", "(")
                left = self.expr()
                self._expect("op", ",")
                right = self.expr()
                self._expect("op", ")")
                return Binary(func, left, right)
        if self._accept("op", "("):
            inner = self.expr()
            self._expect("op", ")")
            return inner
        raise SpecError(
            "expected an expression at %s in %r, found %s"
            % (self._current.location, self._source, self._current)
        )
