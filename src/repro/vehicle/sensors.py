"""Forward range sensor (radar) model.

Produces the three target signals the FSRACC consumes: ``VehicleAhead``,
``TargetRange`` and ``TargetRelVel``.  Two behaviours matter for the
reproduction:

* **Acquisition jumps** — ``TargetRange`` is 0 while no target is tracked
  and jumps discretely to the true range on acquisition, the §V-C2 warm-up
  problem.
* **Measurement noise** — the real vehicle's logs differ from the HIL's
  noise-free ones, part of the §V-C3 simulation-vs-vehicle gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.vehicle.lead import LeadVehicle


@dataclass(frozen=True)
class TargetMeasurement:
    """One radar output sample."""

    vehicle_ahead: bool
    target_range: float
    target_rel_vel: float


class RangeSensor:
    """Radar tracking the nearest in-lane lead vehicle.

    Attributes:
        max_range: detection limit, metres.
        range_noise_std: Gaussian noise on range, metres.
        rel_vel_noise_std: Gaussian noise on relative velocity, m/s.
    """

    def __init__(
        self,
        max_range: float = 150.0,
        range_noise_std: float = 0.0,
        rel_vel_noise_std: float = 0.0,
        seed: int = 0,
    ) -> None:
        if max_range <= 0:
            raise SimulationError("max_range must be positive")
        if range_noise_std < 0 or rel_vel_noise_std < 0:
            raise SimulationError("noise standard deviations must be >= 0")
        self.max_range = max_range
        self.range_noise_std = range_noise_std
        self.rel_vel_noise_std = rel_vel_noise_std
        self._rng = np.random.default_rng(seed)

    def measure(
        self,
        lead: LeadVehicle,
        ego_position: float,
        ego_velocity: float,
    ) -> TargetMeasurement:
        """Measure the lead vehicle relative to the ego.

        Relative velocity follows the sign convention documented in the
        message database: lead minus ego, so *negative means closing*.
        """
        gap = lead.range_from(ego_position)
        if gap is None or gap > self.max_range or gap < 0:
            return TargetMeasurement(False, 0.0, 0.0)
        measured_range = gap
        rel_vel = lead.velocity - ego_velocity
        if self.range_noise_std > 0:
            measured_range += float(self._rng.normal(0.0, self.range_noise_std))
            measured_range = max(0.0, measured_range)
        if self.rel_vel_noise_std > 0:
            rel_vel += float(self._rng.normal(0.0, self.rel_vel_noise_std))
        return TargetMeasurement(True, measured_range, rel_vel)
