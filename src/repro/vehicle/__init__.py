"""Vehicle dynamics substrate — the CARSIM stand-in.

Longitudinal ego-vehicle dynamics, road grade profiles, scripted lead
vehicles, the forward range sensor, and scripted driver behaviour,
composed into declarative driving scenarios.
"""

from repro.vehicle.brakes import BrakeSystem
from repro.vehicle.driver import DriverAction, DriverScript, DriverState
from repro.vehicle.dynamics import GRAVITY, CarState, LongitudinalCar
from repro.vehicle.engine import Engine
from repro.vehicle.lead import (
    Appear,
    ChangeSpeed,
    Disappear,
    LeadEvent,
    LeadVehicle,
)
from repro.vehicle.road import (
    FlatRoad,
    GradeSegment,
    RoadProfile,
    RollingHills,
    SegmentedRoad,
)
from repro.vehicle.scenario import (
    STANDARD_SCENARIOS,
    Scenario,
    aggressive_cut_ins,
    cut_in,
    free_cruise,
    hard_brake_lead,
    hills_cruise,
    mountain_pass,
    overtake,
    steady_follow,
    stop_and_go,
    traffic_jam,
)
from repro.vehicle.sensors import RangeSensor, TargetMeasurement

__all__ = [
    "Appear",
    "BrakeSystem",
    "CarState",
    "ChangeSpeed",
    "Disappear",
    "DriverAction",
    "DriverScript",
    "DriverState",
    "Engine",
    "FlatRoad",
    "GRAVITY",
    "GradeSegment",
    "LeadEvent",
    "LeadVehicle",
    "LongitudinalCar",
    "RangeSensor",
    "RoadProfile",
    "RollingHills",
    "STANDARD_SCENARIOS",
    "Scenario",
    "SegmentedRoad",
    "TargetMeasurement",
    "aggressive_cut_ins",
    "cut_in",
    "free_cruise",
    "hard_brake_lead",
    "hills_cruise",
    "mountain_pass",
    "overtake",
    "steady_follow",
    "stop_and_go",
    "traffic_jam",
]
