"""Brake system model.

Two actors can brake the vehicle: the ACC (through ``RequestedDecel``,
m/s²) and the driver (through pedal pressure, bar).  The brake controller
honours whichever demands more deceleration, tracks the demand with a
first-order lag, and saturates at the friction limit.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError


class BrakeSystem:
    """First-order deceleration-tracking brake controller.

    Attributes:
        max_decel: strongest achievable deceleration, m/s² (positive).
        time_constant: demand tracking lag, seconds.
        pedal_gain: driver pedal pressure (bar) to deceleration (m/s²).
    """

    def __init__(
        self,
        max_decel: float = 9.5,
        time_constant: float = 0.12,
        pedal_gain: float = 0.06,
    ) -> None:
        if max_decel <= 0 or time_constant <= 0 or pedal_gain <= 0:
            raise SimulationError("brake parameters must be positive")
        self.max_decel = max_decel
        self.time_constant = time_constant
        self.pedal_gain = pedal_gain
        self.decel = 0.0

    def reset(self) -> None:
        """Release the brakes."""
        self.decel = 0.0

    def step(
        self,
        dt: float,
        requested_decel: float,
        brake_requested: bool,
        pedal_pressure: float,
    ) -> float:
        """Advance one step; returns achieved deceleration (m/s², >= 0).

        ``requested_decel`` follows the paper's sign convention: the ACC
        requests a *negative* value for deceleration.  A positive or
        non-finite ACC request is ignored by the brake controller (it only
        actuates on sane demands) — but note the monitor still sees the
        bad request on the bus, which is what Rule #5 checks.
        """
        acc_demand = 0.0
        if brake_requested and math.isfinite(requested_decel) and requested_decel < 0:
            acc_demand = -requested_decel
        driver_demand = 0.0
        if math.isfinite(pedal_pressure) and pedal_pressure > 0:
            driver_demand = pedal_pressure * self.pedal_gain
        target = min(self.max_decel, max(acc_demand, driver_demand))
        alpha = dt / (self.time_constant + dt)
        self.decel += alpha * (target - self.decel)
        return self.decel
