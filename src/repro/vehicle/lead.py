"""Lead (target) vehicle with scripted maneuvers.

The lead vehicle drives the interesting ACC scenarios: steady following,
hard braking, cut-ins (a car merging close in front — the paper's Rule #2
triage case), and cut-outs/overtakes.  Maneuvers are expressed as a small
time-ordered event script, which keeps scenarios declarative and easy to
review.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import SimulationError


@dataclass(frozen=True)
class LeadEvent:
    """Base class for scripted lead-vehicle events (dispatch at ``time``)."""

    time: float


@dataclass(frozen=True)
class Appear(LeadEvent):
    """The lead appears ``range_m`` ahead of the ego, at ``speed`` m/s.

    Models both initial acquisition and cut-ins; the range sensor will see
    a discrete jump from "no target" to the actual range (§V-C2).
    """

    range_m: float = 50.0
    speed: float = 25.0


@dataclass(frozen=True)
class Disappear(LeadEvent):
    """The lead leaves the lane (cut-out, or the ego changes lanes)."""


@dataclass(frozen=True)
class ChangeSpeed(LeadEvent):
    """The lead ramps to ``speed`` m/s at ``accel`` m/s² magnitude."""

    speed: float = 25.0
    accel: float = 1.5


class LeadVehicle:
    """A scripted lead vehicle integrated alongside the ego."""

    def __init__(self, script: Sequence[LeadEvent] = ()) -> None:
        times = [event.time for event in script]
        if sorted(times) != times:
            raise SimulationError("lead script events must be time-ordered")
        self._script: List[LeadEvent] = list(script)
        self._next_event = 0
        self.present = False
        self.position = 0.0
        self.velocity = 0.0
        self._target_speed = 0.0
        self._ramp_accel = 0.0

    def reset(self) -> None:
        """Rewind the script and remove the lead from the road."""
        self._next_event = 0
        self.present = False
        self.position = 0.0
        self.velocity = 0.0
        self._target_speed = 0.0
        self._ramp_accel = 0.0

    def step(self, dt: float, now: float, ego_position: float) -> None:
        """Advance the lead one step, dispatching any due script events."""
        while (
            self._next_event < len(self._script)
            and self._script[self._next_event].time <= now + 1e-12
        ):
            self._dispatch(self._script[self._next_event], ego_position)
            self._next_event += 1
        if not self.present:
            return
        if self._ramp_accel > 0 and self.velocity != self._target_speed:
            step = math.copysign(
                self._ramp_accel * dt, self._target_speed - self.velocity
            )
            if abs(self._target_speed - self.velocity) <= abs(step):
                self.velocity = self._target_speed
            else:
                self.velocity += step
        self.velocity = max(0.0, self.velocity)
        self.position += self.velocity * dt

    def range_from(self, ego_position: float) -> Optional[float]:
        """Bumper gap to the ego, or ``None`` when absent."""
        if not self.present:
            return None
        return self.position - ego_position

    def _dispatch(self, event: LeadEvent, ego_position: float) -> None:
        if isinstance(event, Appear):
            self.present = True
            self.position = ego_position + event.range_m
            self.velocity = event.speed
            self._target_speed = event.speed
            self._ramp_accel = 0.0
        elif isinstance(event, Disappear):
            self.present = False
        elif isinstance(event, ChangeSpeed):
            self._target_speed = event.speed
            self._ramp_accel = abs(event.accel)
        else:
            raise SimulationError("unknown lead event %r" % (event,))
