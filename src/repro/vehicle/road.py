"""Road grade profiles.

Grade is expressed as a dimensionless slope (rise over run); positive
means uphill.  Grade matters to the reproduction because the paper's
real-vehicle logs showed that "starting up a hill torque must increase to
maintain constant vehicle speed" — the system dynamics that made strict
versions of Rules #3 and #4 fire false alarms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SimulationError


class RoadProfile:
    """Interface: grade as a function of longitudinal position (metres)."""

    def grade_at(self, position: float) -> float:
        """Slope at ``position`` (positive = uphill)."""
        raise NotImplementedError


class FlatRoad(RoadProfile):
    """A perfectly level road."""

    def grade_at(self, position: float) -> float:
        return 0.0


@dataclass(frozen=True)
class GradeSegment:
    """One stretch of constant grade starting at ``start`` metres."""

    start: float
    grade: float


class SegmentedRoad(RoadProfile):
    """Piecewise-constant grade, defined by sorted segments.

    The grade before the first segment is 0.  Segments must be given in
    increasing ``start`` order.
    """

    def __init__(self, segments: Sequence[GradeSegment]) -> None:
        starts = [segment.start for segment in segments]
        if sorted(starts) != starts:
            raise SimulationError("road segments must be sorted by start")
        self._segments: List[GradeSegment] = list(segments)

    def grade_at(self, position: float) -> float:
        grade = 0.0
        for segment in self._segments:
            if position >= segment.start:
                grade = segment.grade
            else:
                break
        return grade


class RollingHills(RoadProfile):
    """Sinusoidal rolling terrain.

    Attributes:
        amplitude: peak grade (e.g. 0.04 for a 4 % hill).
        wavelength: distance between successive crests, in metres.
        phase: phase offset in radians.
    """

    def __init__(
        self, amplitude: float = 0.04, wavelength: float = 800.0, phase: float = 0.0
    ) -> None:
        if wavelength <= 0:
            raise SimulationError("wavelength must be positive")
        self.amplitude = amplitude
        self.wavelength = wavelength
        self.phase = phase

    def grade_at(self, position: float) -> float:
        return self.amplitude * math.sin(
            2.0 * math.pi * position / self.wavelength + self.phase
        )
