"""Longitudinal vehicle dynamics — the CARSIM stand-in.

A point-mass longitudinal model with engine, brakes, aerodynamic and
rolling drag, and road grade.  The safety rules in the paper only refer
to longitudinal quantities (speed, range, relative speed, torque and
deceleration requests), so a longitudinal model exercises the same
monitor code paths the authors' CARSIM environment did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.vehicle.brakes import BrakeSystem
from repro.vehicle.engine import Engine
from repro.vehicle.road import FlatRoad, RoadProfile

#: Standard gravity, m/s².
GRAVITY = 9.81


@dataclass
class CarState:
    """Snapshot of the ego vehicle's longitudinal state."""

    position: float
    velocity: float
    acceleration: float
    engine_torque: float
    brake_decel: float
    grade: float

    @property
    def throttle_fraction(self) -> float:
        """Convenience: positive engine torque normalized to [0, 1]."""
        return max(0.0, self.engine_torque) / 3000.0


class LongitudinalCar:
    """Point-mass car with engine, brakes, drag and grade forces.

    Attributes:
        mass: vehicle mass, kg.
        drag_c0: constant rolling resistance force, N.
        drag_c1: linear drag coefficient, N per (m/s).
        drag_c2: aerodynamic drag coefficient, N per (m/s)².
    """

    def __init__(
        self,
        mass: float = 1600.0,
        drag_c0: float = 160.0,
        drag_c1: float = 2.0,
        drag_c2: float = 0.42,
        engine: Optional[Engine] = None,
        brakes: Optional[BrakeSystem] = None,
        road: Optional[RoadProfile] = None,
        initial_velocity: float = 0.0,
        initial_position: float = 0.0,
    ) -> None:
        if mass <= 0:
            raise SimulationError("mass must be positive")
        self.mass = mass
        self.drag_c0 = drag_c0
        self.drag_c1 = drag_c1
        self.drag_c2 = drag_c2
        self.engine = engine or Engine()
        self.brakes = brakes or BrakeSystem()
        self.road = road or FlatRoad()
        self.position = initial_position
        self.velocity = initial_velocity
        self.acceleration = 0.0

    def reset(self, position: float = 0.0, velocity: float = 0.0) -> None:
        """Reset kinematics and actuators."""
        self.position = position
        self.velocity = velocity
        self.acceleration = 0.0
        self.engine.reset()
        self.brakes.reset()

    def drag_force(self, velocity: Optional[float] = None) -> float:
        """Total resistive force (N) at the given (or current) speed."""
        v = self.velocity if velocity is None else velocity
        if v <= 0:
            return 0.0
        return self.drag_c0 + self.drag_c1 * v + self.drag_c2 * v * v

    def cruise_torque(self, velocity: float, grade: float = 0.0) -> float:
        """Wheel torque (Nm) needed to hold ``velocity`` on ``grade``.

        Useful to initialize controllers and to reason about hill-climb
        torque in tests.
        """
        force = self.drag_force(velocity) + self.mass * GRAVITY * grade
        return force * self.engine.wheel_radius

    def step(
        self,
        dt: float,
        requested_torque: float,
        requested_decel: float,
        brake_requested: bool,
        driver_brake_pressure: float = 0.0,
    ) -> CarState:
        """Advance the vehicle one time step.

        Args:
            dt: integration step, seconds.
            requested_torque: ACC wheel-torque request, Nm.
            requested_decel: ACC deceleration request, m/s² (negative).
            brake_requested: whether the ACC asserts its brake request.
            driver_brake_pressure: driver pedal pressure, bar.
        """
        if dt <= 0:
            raise SimulationError("dt must be positive")
        grade = self.road.grade_at(self.position)
        tractive = self.engine.step(dt, requested_torque)
        decel = self.brakes.step(
            dt, requested_decel, brake_requested, driver_brake_pressure
        )
        force = (
            tractive
            - self.drag_force()
            - self.mass * GRAVITY * grade
            - self.mass * decel
        )
        self.acceleration = force / self.mass
        self.velocity += self.acceleration * dt
        if self.velocity < 0.0:
            # The car does not roll backwards in these scenarios; holding
            # at rest mirrors a real transmission's creep/hold behaviour.
            self.velocity = 0.0
            self.acceleration = max(self.acceleration, 0.0)
        self.position += self.velocity * dt
        return self.state(grade)

    def state(self, grade: Optional[float] = None) -> CarState:
        """Current state snapshot."""
        if grade is None:
            grade = self.road.grade_at(self.position)
        return CarState(
            position=self.position,
            velocity=self.velocity,
            acceleration=self.acceleration,
            engine_torque=self.engine.torque,
            brake_decel=self.brakes.decel,
            grade=grade,
        )
