"""Powertrain model — torque requests to tractive force.

The FSRACC requests *additional wheel torque* (Fig. 1); the engine
controller tracks that request with a first-order lag and saturates it at
the powertrain's capability.  Negative requested torque models engine
braking (closed throttle drag), which is how the ACC sheds small amounts
of speed without touching the friction brakes.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError


class Engine:
    """First-order torque-tracking powertrain.

    Attributes:
        max_torque: maximum deliverable wheel torque, Nm.
        min_torque: strongest engine-braking torque (negative), Nm.
        time_constant: torque tracking lag, seconds.
        wheel_radius: effective wheel radius, metres.
    """

    def __init__(
        self,
        max_torque: float = 3000.0,
        min_torque: float = -600.0,
        time_constant: float = 0.15,
        wheel_radius: float = 0.32,
    ) -> None:
        if max_torque <= 0 or min_torque > 0:
            raise SimulationError("torque limits must bracket zero")
        if time_constant <= 0 or wheel_radius <= 0:
            raise SimulationError("time constant and wheel radius must be positive")
        self.max_torque = max_torque
        self.min_torque = min_torque
        self.time_constant = time_constant
        self.wheel_radius = wheel_radius
        self.torque = 0.0

    def reset(self, torque: float = 0.0) -> None:
        """Reset the delivered torque state."""
        self.torque = torque

    def step(self, dt: float, requested_torque: float) -> float:
        """Advance the powertrain one step; returns tractive force in N.

        Non-finite requests (possible when the non-robust feature forwards
        a corrupted input) are treated as "hold current torque": the real
        engine controller in the test vehicle clamped its command rather
        than crashing.
        """
        if math.isfinite(requested_torque):
            target = min(self.max_torque, max(self.min_torque, requested_torque))
            alpha = dt / (self.time_constant + dt)
            self.torque += alpha * (target - self.torque)
        return self.torque / self.wheel_radius

    @property
    def throttle_position(self) -> float:
        """Throttle opening feedback, percent (0 at or below zero torque)."""
        if self.torque <= 0:
            return 0.0
        return min(100.0, 100.0 * self.torque / self.max_torque)
