"""Driving scenarios — declarative bundles of road, lead and driver scripts.

These are the workloads fed to the HIL testbench: the robustness campaign
runs fault injection on top of a nominal following scenario, and the
synthetic "real vehicle" logs are produced by chaining the richer
scenarios (hills, cut-ins, overtakes, stop-and-go) that the paper reports
as the sources of overly-strict-rule violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.vehicle.driver import DriverAction, DriverScript, DriverState
from repro.vehicle.lead import Appear, ChangeSpeed, Disappear, LeadEvent, LeadVehicle
from repro.vehicle.road import FlatRoad, GradeSegment, RoadProfile, RollingHills, SegmentedRoad
from repro.vehicle.sensors import RangeSensor


@dataclass(frozen=True)
class Scenario:
    """A complete driving scenario.

    Attributes:
        name: registry key.
        duration: scenario length, seconds.
        road: grade profile.
        lead_script: timed lead-vehicle maneuvers.
        driver_actions: timed driver actions.
        initial_velocity: ego speed at t=0, m/s.
        range_noise_std: radar range noise (0 on the HIL, > 0 on the car).
        rel_vel_noise_std: radar relative-velocity noise.
        velocity_noise_std: wheel-speed sensor noise on the broadcast
            Velocity signal (0 on the HIL, > 0 on the real vehicle).
        description: what the scenario exercises.
    """

    name: str
    duration: float
    road: RoadProfile = field(default_factory=FlatRoad)
    lead_script: Tuple[LeadEvent, ...] = ()
    driver_actions: Tuple[DriverAction, ...] = ()
    initial_velocity: float = 25.0
    range_noise_std: float = 0.0
    rel_vel_noise_std: float = 0.0
    velocity_noise_std: float = 0.0
    description: str = ""

    def make_lead(self) -> LeadVehicle:
        """Instantiate the scripted lead vehicle."""
        return LeadVehicle(self.lead_script)

    def make_driver(self) -> DriverScript:
        """Instantiate the scripted driver."""
        return DriverScript(
            self.driver_actions,
            initial=DriverState(set_speed=0.0, headway=2, acc_on=False),
        )

    def make_sensor(self, seed: int = 0) -> RangeSensor:
        """Instantiate the radar with this scenario's noise levels."""
        return RangeSensor(
            range_noise_std=self.range_noise_std,
            rel_vel_noise_std=self.rel_vel_noise_std,
            seed=seed,
        )


def _engage(time: float, set_speed: float, headway: int = 2) -> Tuple[DriverAction, ...]:
    """Driver switches the ACC on and dials a set speed."""
    return (
        DriverAction(time=time, acc_on=True, set_speed=set_speed, headway=headway),
    )


def steady_follow(duration: float = 120.0) -> Scenario:
    """Nominal target-following: the robustness campaign's base workload."""
    return Scenario(
        name="steady_follow",
        duration=duration,
        lead_script=(Appear(time=5.0, range_m=60.0, speed=27.0),),
        driver_actions=_engage(2.0, set_speed=31.0),
        initial_velocity=27.0,
        description=(
            "ACC engaged at 31 m/s set speed behind a steady 27 m/s lead; "
            "the feature settles into gap control."
        ),
    )


def free_cruise(duration: float = 90.0) -> Scenario:
    """Cruising at set speed with no target (pure speed control)."""
    return Scenario(
        name="free_cruise",
        duration=duration,
        driver_actions=_engage(2.0, set_speed=29.0),
        initial_velocity=24.0,
        description="No lead vehicle; ACC climbs to and holds set speed.",
    )


def hills_cruise(duration: float = 240.0) -> Scenario:
    """Cruise over rolling hills — the Rules #3/#4 triage scenario.

    Climbing a hill at constant speed demands more torque; with the ego
    hovering around set speed, strict 'torque must not increase above set
    speed' rules fire on negligible transients (§IV-A).
    """
    return Scenario(
        name="hills_cruise",
        duration=duration,
        road=RollingHills(amplitude=0.05, wavelength=700.0),
        driver_actions=_engage(2.0, set_speed=28.0),
        initial_velocity=28.0,
        description="Set-speed cruise over 5% rolling hills.",
    )


def cut_in(duration: float = 90.0) -> Scenario:
    """A car cuts in close ahead — the Rule #2 triage scenario."""
    return Scenario(
        name="cut_in",
        duration=duration,
        lead_script=(
            Appear(time=30.0, range_m=14.0, speed=26.5),
            ChangeSpeed(time=45.0, speed=30.0, accel=1.2),
        ),
        driver_actions=_engage(2.0, set_speed=29.0),
        initial_velocity=28.0,
        description=(
            "Cut-in at 14 m while cruising; small headway plus mild "
            "acceleration afterwards."
        ),
    )


def overtake(duration: float = 120.0) -> Scenario:
    """Approach a slow lead, pull out, pass, and resume set speed."""
    return Scenario(
        name="overtake",
        duration=duration,
        lead_script=(
            Appear(time=10.0, range_m=90.0, speed=21.0),
            Disappear(time=55.0),
        ),
        driver_actions=_engage(2.0, set_speed=30.0),
        initial_velocity=28.0,
        description=(
            "Slow lead forces gap control; the ego pulls out at t=55 s "
            "(lead leaves the lane) and accelerates back to set speed."
        ),
    )


def stop_and_go(duration: float = 180.0) -> Scenario:
    """Full-speed-range behaviour: the lead brakes to a stop and pulls away."""
    return Scenario(
        name="stop_and_go",
        duration=duration,
        lead_script=(
            Appear(time=5.0, range_m=45.0, speed=22.0),
            ChangeSpeed(time=40.0, speed=0.0, accel=2.2),
            ChangeSpeed(time=90.0, speed=24.0, accel=1.8),
        ),
        driver_actions=_engage(2.0, set_speed=27.0),
        initial_velocity=22.0,
        description="Lead decelerates to a stop, dwells, then pulls away.",
    )


def hard_brake_lead(duration: float = 90.0) -> Scenario:
    """The lead brakes hard; headway dips below 1 s and must recover."""
    return Scenario(
        name="hard_brake_lead",
        duration=duration,
        lead_script=(
            Appear(time=5.0, range_m=42.0, speed=27.0),
            ChangeSpeed(time=30.0, speed=16.0, accel=4.0),
            ChangeSpeed(time=50.0, speed=26.0, accel=1.5),
        ),
        driver_actions=_engage(2.0, set_speed=30.0),
        initial_velocity=27.0,
        description="Hard lead braking stresses headway recovery (Rule #1).",
    )


def traffic_jam(duration: float = 240.0) -> Scenario:
    """Repeated stop-and-go cycles — congested traffic."""
    script = [Appear(time=5.0, range_m=35.0, speed=12.0)]
    t = 20.0
    for _ in range(4):
        script.append(ChangeSpeed(time=t, speed=0.0, accel=1.2))
        script.append(ChangeSpeed(time=t + 25.0, speed=11.0, accel=1.2))
        t += 50.0
    return Scenario(
        name="traffic_jam",
        duration=duration,
        lead_script=tuple(script),
        driver_actions=_engage(2.0, set_speed=22.0, headway=2),
        initial_velocity=12.0,
        description="Four consecutive stop-and-go cycles behind a lead.",
    )


def mountain_pass(duration: float = 200.0) -> Scenario:
    """Long steep climb, crest, and descent — sustained grade authority."""
    road = SegmentedRoad(
        [
            GradeSegment(300.0, 0.07),
            GradeSegment(2300.0, 0.0),
            GradeSegment(2600.0, -0.07),
            GradeSegment(4600.0, 0.0),
        ]
    )
    return Scenario(
        name="mountain_pass",
        duration=duration,
        road=road,
        driver_actions=_engage(2.0, set_speed=26.0),
        initial_velocity=26.0,
        description="7% climb for 2 km, a crest, then a 7% descent.",
    )


def aggressive_cut_ins(duration: float = 150.0) -> Scenario:
    """Three successively closer cut-ins — urban merge harassment."""
    return Scenario(
        name="aggressive_cut_ins",
        duration=duration,
        lead_script=(
            Appear(time=20.0, range_m=22.0, speed=26.0),
            Disappear(time=45.0),
            Appear(time=60.0, range_m=16.0, speed=25.5),
            Disappear(time=85.0),
            Appear(time=100.0, range_m=11.0, speed=25.0),
            ChangeSpeed(time=115.0, speed=29.0, accel=1.5),
        ),
        driver_actions=_engage(2.0, set_speed=29.0),
        initial_velocity=27.0,
        description="Cut-ins at 22, 16 and 11 m while cruising at 29 m/s.",
    )


#: Registry of the standard scenarios by name.
STANDARD_SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        steady_follow(),
        free_cruise(),
        hills_cruise(),
        cut_in(),
        overtake(),
        stop_and_go(),
        hard_brake_lead(),
        traffic_jam(),
        mountain_pass(),
        aggressive_cut_ins(),
    )
}
