"""Scripted driver model.

The driver interacts with the FSRACC exactly the way the paper's test
scenarios require: switching the feature on, dialing a set speed and a
headway selection, and occasionally touching the pedals (which is how a
real driver cancels or overrides cruise control).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.errors import SimulationError


@dataclass(frozen=True)
class DriverState:
    """The driver-controlled inputs at one instant."""

    accel_pedal: float = 0.0
    brake_pressure: float = 0.0
    set_speed: float = 0.0
    headway: int = 2
    acc_on: bool = False


@dataclass(frozen=True)
class DriverAction:
    """A change to apply at ``time``; ``None`` fields keep their value."""

    time: float
    accel_pedal: Optional[float] = None
    brake_pressure: Optional[float] = None
    set_speed: Optional[float] = None
    headway: Optional[int] = None
    acc_on: Optional[bool] = None


class DriverScript:
    """Piecewise-constant driver behaviour defined by timed actions."""

    def __init__(
        self,
        actions: Sequence[DriverAction] = (),
        initial: DriverState = DriverState(),
    ) -> None:
        times = [action.time for action in actions]
        if sorted(times) != times:
            raise SimulationError("driver actions must be time-ordered")
        self._actions: List[DriverAction] = list(actions)
        self._initial = initial
        self._next_action = 0
        self._state = initial

    def reset(self) -> None:
        """Rewind the script."""
        self._next_action = 0
        self._state = self._initial

    def step(self, now: float) -> DriverState:
        """Advance to ``now`` and return the current driver state."""
        while (
            self._next_action < len(self._actions)
            and self._actions[self._next_action].time <= now + 1e-12
        ):
            self._state = self._apply(self._actions[self._next_action])
            self._next_action += 1
        return self._state

    def _apply(self, action: DriverAction) -> DriverState:
        updates = {
            field: value
            for field, value in (
                ("accel_pedal", action.accel_pedal),
                ("brake_pressure", action.brake_pressure),
                ("set_speed", action.set_speed),
                ("headway", action.headway),
                ("acc_on", action.acc_on),
            )
            if value is not None
        }
        return replace(self._state, **updates)
