"""The paper's safety specification — Rules #0 through #6 (§III-C).

Each rule is expressed in the monitor's specification language, gated on
``ACCEnabled`` where the paper implies the property only binds while the
feature claims control authority.  Rule #0 is ungated: it *is* the
consistency check between ``ServiceACC`` and ``ACCEnabled``.

Every rule exists in two flavours:

* the **strict** form — the rules as first written, from expert-elicited
  common sense with no knowledge of the control internals;
* the **relaxed** form — after the triage of §IV-A, with intent
  approximation applied: magnitude/duration filters on torque-trend rules
  (hill climbs and cut-ins produce negligible or fleeting increases that
  do not imply intent), premise margins, warm-up after target
  acquisition, and a one-cycle tolerance on Rule #5.

Notes on encodings:

* *Headway time* (Rule #1) is ``TargetRange / Velocity`` seconds.
* *Desired headway distance* (Rule #2) is the selected time gap times
  speed.  The headway enum maps 1/2/3 to 1.2/1.8/2.4 s, which the spec
  encodes as the linear form ``0.6 + 0.6 * SelHeadway``.
* *Torque increasing* uses the freshness-aware ``rising()`` (i.e.
  ``delta()``), because ``RequestedTorque`` broadcasts on the slow
  period (§V-C1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.intent import (
    DurationFilter,
    IntentFilter,
    MagnitudeFilter,
    PersistenceFilter,
)
from repro.core.monitor import Rule
from repro.core.statemachine import StateMachine
from repro.core.warmup import WarmupSpec, activation_warmup

#: Ids of the seven paper rules, in order.
RULE_IDS: Tuple[str, ...] = (
    "rule0",
    "rule1",
    "rule2",
    "rule3",
    "rule4",
    "rule5",
    "rule6",
)

#: Spec-language expression for the selected headway time gap, seconds.
HEADWAY_TIME_EXPR = "(0.6 + 0.6 * SelHeadway)"

#: Seconds left unchecked at the start of every trace (power-on settle).
INITIAL_SETTLE = 0.5

#: Torque increments below this are negligible for intent purposes, Nm.
#: Sits above one slew-limited publication step (800 Nm/s x 80 ms = 64 Nm),
#: so an isolated full-rate step never reads as sustained intent.
TORQUE_INTENT_THRESHOLD = 70.0


def rule0() -> Rule:
    """#0: if ServiceACC is true, ACCEnabled must be false."""
    return Rule.from_text(
        rule_id="rule0",
        name="ServiceACC implies not enabled",
        formula="ServiceACC -> not ACCEnabled",
        initial_settle=INITIAL_SETTLE,
        description=(
            "Consistency check: the feature must not keep control of the "
            "vehicle when it knows something is wrong."
        ),
    )


def rule1() -> Rule:
    """#1: headway below 1.0 s must recover above 1.0 s within 5 s."""
    return Rule.from_text(
        rule_id="rule1",
        name="Headway recovery",
        formula=(
            "TargetRange / Velocity < 1.0 -> "
            "eventually[0, 5s] TargetRange / Velocity > 1.0"
        ),
        gate="ACCEnabled and VehicleAhead and TargetRange > 0",
        initial_settle=INITIAL_SETTLE,
        description=(
            "Derived from an existing headway metric: dangerously small "
            "headway time must be transient."
        ),
    )


def rule2(strict: bool = True) -> Rule:
    """#2: no torque increase when closer than half the desired headway."""
    rule = Rule.from_text(
        rule_id="rule2",
        name="No acceleration when too close",
        formula=(
            "TargetRange < 0.5 * %s * Velocity -> "
            "not rising(RequestedTorque)" % HEADWAY_TIME_EXPR
        ),
        gate="ACCEnabled and VehicleAhead",
        initial_settle=INITIAL_SETTLE,
        description=(
            "The feature must not try to increase speed when it is "
            "already too close to the target vehicle."
        ),
    )
    if strict:
        return rule
    # Relaxation (§IV-A): small headway plus mild acceleration is normal
    # during overtaking/cut-ins; warm up after acquisition and dismiss
    # negligible or fleeting torque increases.
    relaxed = rule.relaxed(
        MagnitudeFilter("delta(RequestedTorque)", TORQUE_INTENT_THRESHOLD),
        DurationFilter(0.2),
    )
    return Rule(
        rule_id=relaxed.rule_id,
        name=relaxed.name,
        formula=relaxed.formula,
        gate=relaxed.gate,
        warmup=activation_warmup("VehicleAhead", 3.0),
        initial_settle=relaxed.initial_settle,
        filters=relaxed.filters,
        description=relaxed.description + " (relaxed: cut-in tolerant)",
    )


def rule3(strict: bool = True) -> Rule:
    """#3: above set speed with negative torque, torque stays negative."""
    margin = "" if strict else " + 0.5"
    rule = Rule.from_text(
        rule_id="rule3",
        name="Negative torque latched above set speed",
        formula=(
            "(Velocity > ACCSetSpeed%s and RequestedTorque < 0) -> "
            "next RequestedTorque < 0" % margin
        ),
        gate="ACCEnabled",
        initial_settle=INITIAL_SETTLE,
        description=(
            "Once the feature is shedding speed above the set speed, it "
            "must not flip back to positive torque on the next step."
        ),
    )
    if strict:
        return rule
    return rule.relaxed(
        MagnitudeFilter("delta(RequestedTorque)", TORQUE_INTENT_THRESHOLD)
    )


def rule4(strict: bool = True) -> Rule:
    """#4: above set speed, torque stops increasing within 400 ms."""
    margin = "" if strict else " + 0.5"
    rule = Rule.from_text(
        rule_id="rule4",
        name="Slow down above set speed",
        formula=(
            "Velocity > ACCSetSpeed%s -> "
            "eventually[0, 400ms] not rising(RequestedTorque)" % margin
        ),
        gate="ACCEnabled",
        initial_settle=INITIAL_SETTLE,
        description=(
            "While above the set speed the feature should start holding "
            "or shedding speed within 400 ms."
        ),
    )
    if strict:
        return rule
    return rule.relaxed(
        MagnitudeFilter("delta(RequestedTorque)", TORQUE_INTENT_THRESHOLD),
        DurationFilter(0.1),
    )


def rule5(strict: bool = True) -> Rule:
    """#5: a requested deceleration must actually be a deceleration."""
    rule = Rule.from_text(
        rule_id="rule5",
        name="Requested decel is negative",
        formula="BrakeRequested -> RequestedDecel <= 0",
        gate="ACCEnabled",
        initial_settle=INITIAL_SETTLE,
        description=(
            "If the feature asserts BrakeRequested, the accompanying "
            "RequestedDecel value must not be positive."
        ),
    )
    if strict:
        return rule
    # §IV-A: "one cycle of bad requested deceleration may be tolerated"
    # — though even dismissed transients stay in the report as clues.
    return rule.relaxed(PersistenceFilter(2))


def rule6() -> Rule:
    """#6: no positive torque request when the target is extremely close."""
    return Rule.from_text(
        rule_id="rule6",
        name="No thrust at near collision",
        formula=(
            "(VehicleAhead and TargetRange < 1) -> "
            "(not TorqueRequested or RequestedTorque < 0)"
        ),
        gate="ACCEnabled",
        initial_settle=INITIAL_SETTLE,
        description=(
            "Near-collision check: with the target vehicle extremely "
            "close, the feature must not request an increase in speed."
        ),
    )


def consistency_rule(with_warmup: bool = True) -> Rule:
    """Range / relative-velocity agreement (§V-C2's motivating check).

    The paper observed that the change in ``TargetRange`` must agree
    with the sign of ``TargetRelVel`` in any non-fault condition —
    except at target acquisition, where range jumps discretely from 0,
    so the rule needs warming up.  This is the check the FSRACC itself
    "has enough information to do... it just doesn't".
    """
    return Rule.from_text(
        rule_id="consistency",
        name="Range rate agrees with relative velocity",
        formula=(
            "not ((rate(TargetRange) > 0.75 and TargetRelVel < -0.75) or "
            "(rate(TargetRange) < -0.75 and TargetRelVel > 0.75) or "
            "(abs(rate(TargetRange)) < 0.05 and abs(TargetRelVel) > 2.0))"
        ),
        gate="ACCEnabled and VehicleAhead",
        warmup=activation_warmup("VehicleAhead", 1.0) if with_warmup else None,
        initial_settle=INITIAL_SETTLE,
        description=(
            "The observed range rate and the broadcast relative velocity "
            "must not firmly disagree — neither in sign, nor by the range "
            "freezing while the relative velocity says it should move."
        ),
    )


def freshness_rule(signal: str, max_age: float, period: float = 0.02) -> Rule:
    """A staleness watchdog: ``signal`` must keep updating (extension).

    Value-based rules are blind to a *silent* sensor — every held sample
    still satisfies them.  This rule bounds the age of the most recent
    update instead, catching lost messages and dead nodes.  ``max_age``
    is in seconds; it is converted to monitor rows.
    """
    max_rows = max(1, int(round(max_age / period)))
    return Rule.from_text(
        rule_id="fresh_%s" % signal.lower(),
        name="%s keeps updating" % signal,
        formula="age(%s) <= %d" % (signal, max_rows),
        initial_settle=INITIAL_SETTLE,
        description=(
            "Freshness watchdog: %s must update at least every %.2f s "
            "(stale data means a lost message or silent node)."
            % (signal, max_age)
        ),
    )


def mode_machine() -> StateMachine:
    """A mode machine for ACC engagement (§V-B's state-machine style).

    Lets rules be written against modal state (``in_state(acc, engaged)``)
    instead of repeating signal predicates, and demonstrates how the
    specification language avoids nested temporal operators.
    """
    return StateMachine(
        name="acc",
        states=("idle", "engaged", "fault"),
        initial="idle",
        transitions=(
            ("idle", "engaged", "ACCEnabled"),
            ("idle", "fault", "ServiceACC"),
            ("engaged", "fault", "ServiceACC"),
            ("engaged", "idle", "not ACCEnabled"),
            ("fault", "idle", "not ServiceACC"),
        ),
    )


def rule5_modal() -> Rule:
    """Rule #5 written against the mode machine instead of a signal gate."""
    return Rule.from_text(
        rule_id="rule5m",
        name="Requested decel is negative (modal)",
        formula="in_state(acc, engaged) -> "
        "(BrakeRequested -> RequestedDecel <= 0)",
        initial_settle=INITIAL_SETTLE,
        description="Machine-gated variant of rule #5.",
    )


def paper_rules(relaxed: bool = False) -> List[Rule]:
    """The seven Table I rules, strict or relaxed."""
    strict = not relaxed
    return [
        rule0(),
        rule1(),
        rule2(strict=strict),
        rule3(strict=strict),
        rule4(strict=strict),
        rule5(strict=strict),
        rule6(),
    ]


def rules_by_id(relaxed: bool = False) -> Dict[str, Rule]:
    """The Table I rules keyed by id."""
    return {rule.rule_id: rule for rule in paper_rules(relaxed)}


def paper_specset(relaxed: bool = False):
    """The Table I rules as a :class:`~repro.core.specfile.SpecSet`.

    The shape the CLI works in: ``check``/``online``/``lint`` treat the
    bundled rules exactly like a loaded ``.rules`` file.
    """
    from repro.core.specfile import SpecSet

    return SpecSet(rules=paper_rules(relaxed=relaxed))
